//! # blockwatch — leveraging similarity in parallel programs for error detection
//!
//! A from-scratch Rust reproduction of **"BLOCKWATCH: Leveraging Similarity
//! in Parallel Programs for Error Detection"** (Wei & Pattabiraman, DSN
//! 2012): a compile-time analysis classifies every branch of an SPMD
//! program by how its condition data relates across threads (`shared`,
//! `threadID`, `partial`, `none`), and a lock-free runtime monitor flags
//! any execution that deviates from the statically inferred similarity —
//! detecting transient hardware faults in control data with no false
//! positives.
//!
//! This crate is the umbrella: [`Blockwatch`] drives the full pipeline
//! (compile → analyze → instrument → execute/campaign), and [`reports`]
//! regenerates every table and figure of the paper's evaluation. The
//! heavy lifting lives in the component crates, re-exported here:
//!
//! * [`ir`] — SSA IR, builder, verifier, mini-language front-end.
//! * [`analysis`] — the Table II similarity fixpoint + instrumentation plan.
//! * [`monitor`] — Lamport SPSC queues, two-level table, checkers.
//! * [`vm`] — deterministic simulated engine (32-core cost model) and
//!   real-threads engine.
//! * [`fault`] — branch-flip / condition-bit-flip injection campaigns.
//! * [`splash`] — ports of the seven SPLASH-2 benchmarks.
//! * [`gen`] — seeded random SPMD program generator, differential test
//!   oracle, and the `bw fuzz` shrinking loop.
//!
//! # Examples
//!
//! Detect an injected control-data fault in FFT. Campaigns run on a
//! sharded worker pool (here 2 threads) and are bitwise deterministic for
//! any worker count; every failure mode is an [`Error`], not a panic:
//!
//! ```
//! use blockwatch::splash::{Benchmark, Size};
//! use blockwatch::{Blockwatch, FaultModel};
//!
//! let bw = Blockwatch::from_module(Benchmark::Fft.module(Size::Test)?)?;
//! let campaign = bw
//!     .campaign_runner(25, FaultModel::BranchFlip, 4)
//!     .workers(2)
//!     .run()?;
//! assert!(campaign.counts.detected > 0);
//! # Ok::<(), blockwatch::Error>(())
//! ```

#![warn(missing_docs)]

pub mod bench_suite;
mod error;
mod pipeline;
pub mod reports;
pub mod timeline;

pub use bench_suite::{run_bench_suite, BenchSuiteConfig, BenchSuiteResult, BENCH_SUITE_SCHEMA};
pub use error::Error;
pub use pipeline::{Blockwatch, CampaignRunner};
pub use reports::{ForensicsReport, SampleTick, SeriesReport, TraceSummary};
pub use timeline::{PhaseProfile, PhaseStat, PhaseThread, TimelineEvent, TimelineReport};

pub use bw_analysis as analysis;
pub use bw_fault as fault;
pub use bw_gen as gen;
pub use bw_ir as ir;
pub use bw_monitor as monitor;
pub use bw_splash as splash;
pub use bw_telemetry as telemetry;
pub use bw_vm as vm;

pub use bw_analysis::{AnalysisConfig, Category, CategoryHistogram, CheckKind, CheckPlan};
pub use bw_fault::{
    BatchResult, CampaignBatch, CampaignConfig, CampaignError, CampaignProgress, CampaignResult,
    FaultModel, FaultOutcome, OutcomeCounts, WorkerStats,
};
pub use bw_splash::{Benchmark, Size};
pub use bw_telemetry::{
    JsonlRecorder, MetricRegistry, MetricsServer, Recorder, Sampler, TelemetrySnapshot,
    NULL_RECORDER,
};
pub use bw_vm::{
    EngineKind, ExecConfig, MachineModel, MonitorMode, RunOutcome, RunResult, SimConfig,
};
