//! `bw` — the BLOCKWATCH command-line tool.
//!
//! Compile, analyze, protect and fault-test SPMD mini-language programs:
//!
//! ```text
//! bw analyze  <file>                 print per-branch similarity categories
//! bw run      <file> [--threads N] [--engine sim|real] [--monitor-shards S]
//!             [--stats] [--telemetry T.jsonl]
//!                                    run under the monitor
//! bw ir       <file>                 dump the SSA IR
//! bw campaign <file> [--threads N] [--injections K] [--model flip|cond]
//!             [--workers W] [--engine sim|real] [--monitor-shards S]
//!             [--progress] [--stats]
//!             [--telemetry T.jsonl]  fault-injection campaign with and
//!                                    without BLOCKWATCH
//! bw gen      [--seed S] [--max-stmts M] [--out FILE]
//!                                    dump a seeded random SPMD module as
//!                                    textual IR (replayable with bw run)
//! bw stats    <trace.jsonl> [--series] [--format text|json]
//!                                    summarize a JSONL telemetry trace
//! bw top      <trace.jsonl>          time-series view of a sampled trace
//! bw timeline <trace.jsonl> [--chrome OUT.json] [--phase-profile]
//!                                    per-thread span lanes from a trace
//! bw bench-suite [--json OUT.json] [--baseline BASE.json]
//!                                    seeded perf-trajectory suite
//! bw report   <trace.jsonl>          violation forensics from a trace
//! ```
//!
//! Traced commands also take `--sample-interval-ms MS` (background
//! sampler appending `sample` records for `bw top`), `--trace-spans`
//! (causal span records for `bw timeline`) and
//! `--metrics-addr HOST:PORT` (live Prometheus `/metrics` endpoint).
//!
//! Every executing command takes `--engine sim|real`: `sim` is the
//! deterministic simulated scheduler, `real` runs on OS threads (`--real`
//! is kept as a legacy alias for `--engine real` on `bw run`).
//!
//! Commands that analyze a program (`analyze`, `run`, `ir`, `campaign`,
//! `fuzz`) take `--analysis-workers N` to run the similarity analysis as
//! SCC-parallel worklists on N workers (0 = one per core). Results are
//! bitwise-identical to the sequential default at any worker count.
//!
//! `<file>` is a mini-language source path, or `splash:<name>` for a
//! built-in SPLASH-2 port (`splash:fft`, `splash:radix`, …) sized with
//! `--size test|small|reference`.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use blockwatch::bench_suite::{run_bench_suite, BenchSuiteConfig, BenchSuiteResult};
use blockwatch::ir::ModulePrinter;
use blockwatch::reports::{render_telemetry, ForensicsReport, SeriesReport, TraceSummary};
use blockwatch::timeline::TimelineReport;
use blockwatch::telemetry::{JsonlRecorder, MetricRegistry, MetricsServer, Recorder, Sampler};
use blockwatch::vm::MonitorMode;
use blockwatch::{
    AnalysisConfig, Benchmark, Blockwatch, CampaignProgress, EngineKind, ExecConfig, FaultModel,
    RunOutcome, Size, TelemetrySnapshot,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match command.as_str() {
        "analyze" => cmd_analyze(rest),
        "run" => cmd_run(rest),
        "ir" => cmd_ir(rest),
        "campaign" => cmd_campaign(rest),
        "fuzz" => cmd_fuzz(rest),
        "gen" => cmd_gen(rest),
        "stats" => cmd_stats(rest),
        "top" => cmd_top(rest),
        "timeline" => cmd_timeline(rest),
        "bench-suite" => cmd_bench_suite(rest),
        "report" => cmd_report(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  bw analyze  <file>                  print per-branch similarity categories
  bw run      <file> [--threads N] [--engine sim|real] [--monitor-shards S]
              [--stats] [--telemetry T.jsonl] [--sample-interval-ms MS]
              [--trace-spans] [--metrics-addr HOST:PORT]
                                      run under the monitor
  bw ir       <file>                  dump the SSA IR
  bw campaign <file> [--threads N] [--injections K] [--model flip|cond]
              [--workers W] [--engine sim|real] [--monitor-shards S]
              [--progress] [--stats] [--telemetry T.jsonl]
              [--sample-interval-ms MS] [--trace-spans]
              [--metrics-addr HOST:PORT]
  bw fuzz     [--seeds N] [--start S] [--threads T1,T2,..] [--inject K]
              [--max-stmts M] [--engine sim|real] [--real-cross-check]
              [--monitor-shards S] [--require-coverage] [--telemetry T.jsonl]
              [--sample-interval-ms MS] [--trace-spans]
              [--metrics-addr HOST:PORT]
                                      generate random SPMD programs and run
                                      the differential oracle; failures are
                                      shrunk and saved as fuzz-<seed>.bwir
  bw gen      [--seed S] [--max-stmts M] [--out FILE]
                                      dump a seeded random SPMD module as
                                      textual IR (replayable with bw run)
  bw stats    <trace.jsonl> [--series] [--format text|json]
                                      summarize a JSONL telemetry trace
  bw top      <trace.jsonl>           time-series view of a sampled trace:
                                      per-tick events/s, campaign progress
                                      with ETA, per-shard queue depth
  bw timeline <trace.jsonl> [--chrome OUT.json] [--phase-profile]
                                      per-thread span lanes from a
                                      --trace-spans trace; --chrome exports
                                      Chrome Trace Event JSON (open in
                                      Perfetto or chrome://tracing);
                                      --phase-profile flags straggler
                                      threads per barrier phase
  bw bench-suite [--json OUT.json] [--baseline BASE.json] [--seed S]
              [--threads N] [--injections K] [--reps R]
                                      seeded perf-trajectory suite (monitor
                                      ingest, campaign, pipeline stages)
  bw report   <trace.jsonl>           violation forensics from a trace:
                                      per-category detection matrix, top
                                      violating sites, deviant-thread tables

  --engine selects the scheduler: `sim` (deterministic, default) or `real`
  (OS threads); `--real` remains a legacy alias on `bw run`.

  --monitor-shards splits the monitor ingest across S workers, each owning
  a disjoint (site, branch) slice. Verdicts are byte-identical at any S —
  it is purely a throughput knob (see the monitor-ingest bench).

  --analysis-workers runs the similarity analysis as per-SCC worklists
  scheduled across N workers (0 = one per core; omit for the sequential
  oracle). Categories, branches and verdicts are bitwise-identical at any
  N — it is purely a throughput knob (see the analysis bench).

  --sample-interval-ms starts a background sampler that appends timestamped
  `sample` records (counter deltas, gauge levels) to the --telemetry trace;
  render them with `bw top` or `bw stats --series`. --metrics-addr serves
  the live registry as Prometheus text at http://HOST:PORT/metrics. Both
  are observability-only: verdicts, results and `bw report` output are
  byte-identical with or without them.

  --trace-spans streams causal span records (`tspan`) into the --telemetry
  trace: barrier phases, lock wait/hold intervals and per-phase work counts
  from both engines, monitor-shard queue-wait/flush-batch spans, campaign
  stage and per-injection spans, and flow arrows from a deviant thread's
  branch event to the monitor verdict that flagged it. Render with
  `bw timeline`. Like the sampler it is observability-only: all verdicts
  and results are byte-identical with or without it.

  <file> is a source path, a .bwir textual-IR dump (e.g. a fuzz repro), or
  splash:<name> (fft, fmm, radix, raytrace, water, ocean-contig,
  ocean-noncontig) sized with --size test|small|reference";

/// Parses `--analysis-workers` (the SCC-parallel analysis knob): absent =
/// sequential oracle, `0` = one worker per core.
fn analysis_workers(rest: &[String]) -> Result<Option<usize>, String> {
    match flag(rest, "--analysis-workers") {
        None => Ok(None),
        Some(s) => s
            .parse()
            .map(Some)
            .map_err(|_| format!("invalid --analysis-workers `{s}` (expected a count, 0 = auto)")),
    }
}

fn load(spec: &str, rest: &[String]) -> Result<Blockwatch, String> {
    let config =
        AnalysisConfig { analysis_workers: analysis_workers(rest)?, ..AnalysisConfig::default() };
    if let Some(name) = spec.strip_prefix("splash:") {
        let bench = match name {
            "ocean-contig" | "ocean" => Benchmark::OceanContig,
            "fft" => Benchmark::Fft,
            "fmm" => Benchmark::Fmm,
            "ocean-noncontig" => Benchmark::OceanNoncontig,
            "radix" => Benchmark::Radix,
            "raytrace" => Benchmark::Raytrace,
            "water" | "water-nsquared" => Benchmark::WaterNsquared,
            other => return Err(format!("unknown SPLASH benchmark `{other}`")),
        };
        let size = match flag(rest, "--size").as_deref() {
            None | Some("test") => Size::Test,
            Some("small") => Size::Small,
            Some("reference") => Size::Reference,
            Some(other) => {
                return Err(format!("unknown size `{other}` (use test|small|reference)"))
            }
        };
        let module = bench.module(size).map_err(|e| format!("{e}"))?;
        return Blockwatch::from_module_with(module, config).map_err(|e| format!("{e}"));
    }
    let source =
        std::fs::read_to_string(spec).map_err(|e| format!("cannot read `{spec}`: {e}"))?;
    if spec.ends_with(".bwir") {
        let module = blockwatch::ir::parse_module(&source).map_err(|e| format!("{e}"))?;
        return Blockwatch::from_module_with(module, config).map_err(|e| format!("{e}"));
    }
    Blockwatch::compile_with(&source, config).map_err(|e| format!("{e}"))
}

/// Opens the JSONL recorder named by `--telemetry`, if the flag is given.
/// Shared (`Arc`) so the background sampler can append to the same trace.
fn telemetry_recorder(rest: &[String]) -> Result<Option<Arc<JsonlRecorder>>, String> {
    match flag(rest, "--telemetry") {
        Some(path) => JsonlRecorder::create(std::path::Path::new(&path))
            .map(|r| Some(Arc::new(r)))
            .map_err(|e| format!("cannot create `{path}`: {e}")),
        None => Ok(None),
    }
}

/// Live-observability guards: the background sampler and the `/metrics`
/// endpoint stay up while this value is alive and shut down on drop.
struct Observability {
    sampler: Option<Sampler>,
    server: Option<MetricsServer>,
}

impl Observability {
    /// Stops the sampler (flushing its final tick) before the caller
    /// flushes and closes the trace.
    fn finish(&mut self) {
        if let Some(sampler) = self.sampler.take() {
            sampler.stop();
        }
    }
}

/// Starts the observability sidecars requested by `--sample-interval-ms`
/// and `--metrics-addr`, both reading the global [`MetricRegistry`].
fn start_observability(
    rest: &[String],
    recorder: Option<&Arc<JsonlRecorder>>,
) -> Result<Observability, String> {
    let mut obs = Observability { sampler: None, server: None };
    if let Some(ms) = flag(rest, "--sample-interval-ms") {
        let ms: u64 = ms
            .parse()
            .ok()
            .filter(|&ms| ms > 0)
            .ok_or_else(|| format!("--sample-interval-ms needs a positive count, got `{ms}`"))?;
        let Some(recorder) = recorder else {
            return Err("--sample-interval-ms needs --telemetry to give the samples a file".into());
        };
        if !blockwatch::telemetry::ENABLED {
            eprintln!(
                "warning: built without the `telemetry` feature; \
                 --sample-interval-ms records nothing"
            );
        }
        obs.sampler = Some(Sampler::start(
            MetricRegistry::global(),
            Arc::clone(recorder) as Arc<dyn Recorder>,
            Duration::from_millis(ms),
        ));
    }
    if let Some(addr) = flag(rest, "--metrics-addr") {
        let server = MetricsServer::bind(&addr, MetricRegistry::global())
            .map_err(|e| format!("cannot serve metrics on `{addr}`: {e}"))?;
        eprintln!("serving metrics at http://{}/metrics", server.local_addr());
        obs.server = Some(server);
    }
    Ok(obs)
}

/// Keeps the `--trace-spans` global span sink installed for as long as the
/// traced work runs, and removes it on drop so spans from later work (a
/// second campaign, test neighbours) cannot leak into the trace.
struct TraceGuard;

impl TraceGuard {
    fn install(recorder: &Arc<JsonlRecorder>) -> TraceGuard {
        blockwatch::telemetry::set_trace_sink(Some(
            Arc::clone(recorder) as Arc<dyn Recorder>
        ));
        TraceGuard
    }
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        blockwatch::telemetry::set_trace_sink(None);
    }
}

/// Handles `--trace-spans`: installs the span sink over the `--telemetry`
/// recorder and returns the guard that removes it again.
fn trace_spans_guard(
    rest: &[String],
    recorder: Option<&Arc<JsonlRecorder>>,
) -> Result<Option<TraceGuard>, String> {
    if !rest.iter().any(|a| a == "--trace-spans") {
        return Ok(None);
    }
    let Some(recorder) = recorder else {
        return Err("--trace-spans needs --telemetry to give the spans a file".into());
    };
    if !blockwatch::telemetry::ENABLED {
        eprintln!("warning: built without the `telemetry` feature; --trace-spans records nothing");
    }
    Ok(Some(TraceGuard::install(recorder)))
}

/// Warns on stderr when the monitor lost events to full queues.
fn warn_dropped(telemetry: &TelemetrySnapshot) {
    if let Some(dropped) = telemetry.counter("monitor.events_dropped") {
        if dropped > 0 {
            eprintln!(
                "warning: {dropped} event(s) dropped on full queues; \
                 detection coverage may be reduced"
            );
        }
    }
}

fn flag(rest: &[String], name: &str) -> Option<String> {
    rest.iter().position(|a| a == name).and_then(|i| rest.get(i + 1)).cloned()
}

/// Writes a rendered report to stdout. A closed pipe (`bw top … | head`,
/// `… | grep -q`) is a normal way to consume these, so EPIPE is a clean
/// exit, not a panic like `print!` would give.
fn emit(s: &str) {
    use std::io::Write;
    if std::io::stdout().write_all(s.as_bytes()).is_err() {
        std::process::exit(0);
    }
}

fn file_arg(rest: &[String]) -> Result<String, String> {
    rest.iter()
        .find(|a| !a.starts_with("--") && rest.iter().position(|b| b == *a).is_some_and(|i| i == 0 || !rest[i - 1].starts_with("--")))
        .cloned()
        .ok_or_else(|| format!("missing <file> argument\n{USAGE}"))
}

fn threads(rest: &[String]) -> u32 {
    flag(rest, "--threads").and_then(|s| s.parse().ok()).unwrap_or(4)
}

/// Parses `--monitor-shards S` (must be positive when given).
fn monitor_shards(rest: &[String]) -> Result<Option<usize>, String> {
    match flag(rest, "--monitor-shards") {
        Some(s) => match s.parse::<usize>() {
            Ok(n) if n > 0 => Ok(Some(n)),
            _ => Err(format!("--monitor-shards needs a positive count, got `{s}`")),
        },
        None => Ok(None),
    }
}

/// Parses `--engine sim|real` (with `--real` as a legacy alias for
/// `--engine real`).
fn engine_kind(rest: &[String]) -> Result<EngineKind, String> {
    match flag(rest, "--engine") {
        Some(name) => name.parse(),
        None if rest.iter().any(|a| a == "--real") => Ok(EngineKind::Real),
        None => Ok(EngineKind::Sim),
    }
}

fn cmd_analyze(rest: &[String]) -> Result<(), String> {
    let bw = load(&file_arg(rest)?, rest)?;
    println!("{:<8} {:<20} {:<10} {:<6} check", "branch", "function", "category", "depth");
    for b in bw.analysis().branches.iter() {
        let func = &bw.image().module.func(b.func).name;
        let check = match bw.plan().check(b.id) {
            Some(c) => format!("{:?}", c.kind),
            None => {
                let reason = bw.plan().decisions[b.id.index()].as_ref().unwrap_err();
                format!("skipped ({reason:?})")
            }
        };
        println!(
            "{:<8} {:<20} {:<10} {:<6} {}",
            b.id.to_string(),
            func,
            b.category.to_string(),
            b.loop_depth,
            check
        );
    }
    let h = bw.histogram();
    println!(
        "\nparallel section: {} branches | {} shared, {} threadID, {} partial, {} none | {} instrumented",
        h.total(),
        h.shared,
        h.thread_id,
        h.partial,
        h.none,
        bw.plan().num_instrumented()
    );
    Ok(())
}

fn cmd_run(rest: &[String]) -> Result<(), String> {
    let bw = load(&file_arg(rest)?, rest)?;
    let n = threads(rest);
    let recorder = telemetry_recorder(rest)?;
    let mut obs = start_observability(rest, recorder.as_ref())?;
    let trace = trace_spans_guard(rest, recorder.as_ref())?;

    let kind = engine_kind(rest)?;
    let shards = monitor_shards(rest)?;

    // The pipeline's own telemetry plus the run's: one merged snapshot.
    let mut telemetry = bw.telemetry();
    let result = bw.run_on(kind, &ExecConfig::new(n).monitor_shards(shards));
    drop(trace);
    obs.finish();
    println!("outcome: {:?} ({} engine)", result.outcome, kind.name());
    match kind {
        EngineKind::Sim => {
            println!("outputs: {:?}", result.outputs);
            println!(
                "parallel cycles: {} | events: {} | violations: {}",
                result.parallel_cycles,
                result.events_sent,
                result.violations.len()
            );
        }
        EngineKind::Real => {
            println!(
                "events processed: {} | dropped: {} | violations: {}",
                result.events_processed,
                result.events_dropped,
                result.violations.len()
            );
        }
    }
    telemetry.merge(&result.telemetry);
    let (outcome, violations) = (result.outcome, result.violations);
    for v in &violations {
        println!("  violation: branch {} {:?} ({} reporters)", v.branch, v.kind, v.reporters);
    }
    warn_dropped(&telemetry);
    if let Some(recorder) = &recorder {
        telemetry.record_to(recorder.as_ref());
        recorder.flush();
    }
    if rest.iter().any(|a| a == "--stats") {
        print!("{}", render_telemetry(&telemetry));
    }
    if outcome != RunOutcome::Completed {
        return Err("program did not complete".into());
    }
    Ok(())
}

fn cmd_ir(rest: &[String]) -> Result<(), String> {
    let bw = load(&file_arg(rest)?, rest)?;
    println!("{}", ModulePrinter(&bw.image().module));
    Ok(())
}

fn cmd_fuzz(rest: &[String]) -> Result<(), String> {
    // Seeds are reported (and repro files named) in hex, so accept both
    // `--start 26` and `--start 0x1a`.
    let parse_seed = |s: &str| match s.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => s.parse().ok(),
    };
    let seeds = flag(rest, "--seeds").and_then(|s| parse_seed(&s)).unwrap_or(100);
    let start_seed = flag(rest, "--start").and_then(|s| parse_seed(&s)).unwrap_or(0);
    let threads = match flag(rest, "--threads") {
        Some(list) => list
            .split(',')
            .map(|t| t.trim().parse::<u32>().map_err(|e| format!("bad thread count `{t}`: {e}")))
            .collect::<Result<Vec<u32>, String>>()?,
        None => blockwatch::gen::DEFAULT_THREADS.to_vec(),
    };
    if threads.is_empty() || threads.contains(&0) {
        return Err("--threads needs a comma-separated list of positive counts".into());
    }
    let injections = flag(rest, "--inject").and_then(|s| s.parse().ok()).unwrap_or(0);
    let mut gen = blockwatch::gen::GenConfig::default();
    if let Some(m) = flag(rest, "--max-stmts").and_then(|s| s.parse().ok()) {
        gen.max_stmts = m;
    }
    let kind = engine_kind(rest)?;
    let real_cross_check = rest.iter().any(|a| a == "--real-cross-check");
    let shards = monitor_shards(rest)?;
    let recorder = telemetry_recorder(rest)?;
    let mut obs = start_observability(rest, recorder.as_ref())?;

    let config = blockwatch::gen::FuzzConfig {
        seeds,
        start_seed,
        threads,
        gen,
        injections,
        engine: kind,
        real_cross_check,
        monitor_shards: shards,
        analysis_workers: analysis_workers(rest)?,
    };
    let trace = trace_spans_guard(rest, recorder.as_ref())?;
    let report = match &recorder {
        Some(recorder) => blockwatch::gen::run_fuzz_recorded(&config, recorder.as_ref()),
        None => blockwatch::gen::run_fuzz(&config),
    };
    drop(trace);
    obs.finish();
    emit(&report.render());

    // Save each minimized reproducer; replay with `bw run fuzz-<seed>.bwir`.
    for f in &report.failures {
        let path = format!("fuzz-{:08x}.bwir", f.seed);
        std::fs::write(&path, &f.minimized)
            .map_err(|e| format!("cannot write `{path}`: {e}"))?;
        println!("wrote {path}");
    }
    if !report.ok() {
        return Err(format!("{} seed(s) failed the oracle", report.failures.len()));
    }
    if rest.iter().any(|a| a == "--require-coverage") {
        let unexercised = report.stats.coverage.unexercised();
        if !unexercised.is_empty() {
            return Err(format!(
                "check kind(s) never exercised: {} — the session proves nothing \
                 about those checkers; widen the seed window",
                unexercised.join(", ")
            ));
        }
    }
    Ok(())
}

fn cmd_gen(rest: &[String]) -> Result<(), String> {
    let seed = flag(rest, "--seed")
        .map(|s| match s.strip_prefix("0x") {
            Some(hex) => u64::from_str_radix(hex, 16).map_err(|e| format!("bad --seed `{s}`: {e}")),
            None => s.parse().map_err(|e| format!("bad --seed `{s}`: {e}")),
        })
        .transpose()?
        .unwrap_or(0);
    let mut gen = blockwatch::gen::GenConfig::default();
    if let Some(m) = flag(rest, "--max-stmts").and_then(|s| s.parse().ok()) {
        gen.max_stmts = m;
    }
    let module = blockwatch::gen::generate_module(seed, &gen);
    let text = format!("{}", ModulePrinter(&module));
    match flag(rest, "--out") {
        Some(path) => {
            std::fs::write(&path, &text).map_err(|e| format!("cannot write `{path}`: {e}"))?;
            println!("wrote {path}");
        }
        None => emit(&text),
    }
    Ok(())
}

fn cmd_stats(rest: &[String]) -> Result<(), String> {
    let path = file_arg(rest)?;
    let text =
        std::fs::read_to_string(&path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let summary = TraceSummary::parse(&text)?;
    match flag(rest, "--format").as_deref() {
        None | Some("text") => emit(&summary.render()),
        Some("json") => emit(&summary.to_json()),
        Some(other) => return Err(format!("unknown format `{other}` (use text|json)")),
    }
    if rest.iter().any(|a| a == "--series") {
        let series = SeriesReport::parse(&text)?;
        if series.ticks.is_empty() {
            return Err(format!(
                "no sample records in `{path}` — re-run with --sample-interval-ms MS \
                 (and --telemetry) to collect them"
            ));
        }
        emit(&series.render());
    }
    Ok(())
}

fn cmd_top(rest: &[String]) -> Result<(), String> {
    let path = file_arg(rest)?;
    let text =
        std::fs::read_to_string(&path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let series = SeriesReport::parse(&text)?;
    if series.ticks.is_empty() {
        return Err(format!(
            "no sample records in `{path}` — re-run with --sample-interval-ms MS \
             (and --telemetry) to collect them"
        ));
    }
    emit(&series.render());
    // Latency context under the series: the trace's histogram aggregates
    // (detection latency, injection duration) with quantiles from their
    // recorded buckets.
    let summary = TraceSummary::parse(&text)?;
    if !summary.histograms.is_empty() {
        let mut snapshot = TelemetrySnapshot::new();
        for h in &summary.histograms {
            snapshot.push_histogram(h.name.as_str(), h.snapshot());
        }
        emit(&render_telemetry(&snapshot));
    }
    Ok(())
}

fn cmd_timeline(rest: &[String]) -> Result<(), String> {
    let path = file_arg(rest)?;
    let text =
        std::fs::read_to_string(&path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let report = TimelineReport::parse(&text)?;
    if report.events.is_empty() {
        return Err(format!(
            "no tspan records in `{path}` — re-run with --telemetry T.jsonl --trace-spans \
             to collect spans"
        ));
    }
    if let Some(out) = flag(rest, "--chrome") {
        std::fs::write(&out, report.to_chrome_json())
            .map_err(|e| format!("cannot write `{out}`: {e}"))?;
        println!("wrote {out} (load in Perfetto or chrome://tracing)");
    }
    emit(&report.render());
    if rest.iter().any(|a| a == "--phase-profile") {
        emit(&report.phase_profile().render());
    }
    Ok(())
}

fn cmd_bench_suite(rest: &[String]) -> Result<(), String> {
    let mut config = BenchSuiteConfig::default();
    if let Some(seed) = flag(rest, "--seed").and_then(|s| s.parse().ok()) {
        config.seed = seed;
    }
    if let Some(n) = flag(rest, "--threads").and_then(|s| s.parse().ok()) {
        config.nthreads = n;
    }
    if let Some(k) = flag(rest, "--injections").and_then(|s| s.parse().ok()) {
        config.injections = k;
    }
    if let Some(r) = flag(rest, "--reps").and_then(|s| s.parse().ok()) {
        config.reps = r;
    }
    let result = run_bench_suite(&config).map_err(|e| format!("{e}"))?;
    emit(&result.render());
    if let Some(path) = flag(rest, "--json") {
        if let Some(dir) = std::path::Path::new(&path).parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)
                    .map_err(|e| format!("cannot create `{}`: {e}", dir.display()))?;
            }
        }
        std::fs::write(&path, result.to_json())
            .map_err(|e| format!("cannot write `{path}`: {e}"))?;
        println!("wrote {path}");
    }
    if let Some(path) = flag(rest, "--baseline") {
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
        let baseline = BenchSuiteResult::parse(&text)?;
        match result.check_against(&baseline, 20.0) {
            Ok(()) => println!("baseline check: ok (within 20x of {path})"),
            Err(failures) => {
                return Err(format!(
                    "baseline check failed:\n  {}",
                    failures.join("\n  ")
                ));
            }
        }
    }
    Ok(())
}

fn cmd_report(rest: &[String]) -> Result<(), String> {
    let path = file_arg(rest)?;
    let text =
        std::fs::read_to_string(&path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let report = ForensicsReport::parse(&text)?;
    emit(&report.render());
    if !report.has_detections() {
        eprintln!(
            "note: no detections in this trace; run the campaign with \
             --telemetry and the `provenance` feature enabled"
        );
    }
    Ok(())
}

fn cmd_campaign(rest: &[String]) -> Result<(), String> {
    let bw = load(&file_arg(rest)?, rest)?;
    let n = threads(rest);
    let recorder = telemetry_recorder(rest)?;
    let mut obs = start_observability(rest, recorder.as_ref())?;
    let injections =
        flag(rest, "--injections").and_then(|s| s.parse().ok()).unwrap_or(200);
    let model = match flag(rest, "--model").as_deref() {
        None | Some("flip") => FaultModel::BranchFlip,
        Some("cond") => FaultModel::ConditionBitFlip,
        Some(other) => return Err(format!("unknown model `{other}` (use flip|cond)")),
    };

    let workers = flag(rest, "--workers").and_then(|s| s.parse().ok()).unwrap_or(0);
    let kind = engine_kind(rest)?;
    let shards = monitor_shards(rest)?;
    let show_progress = rest.iter().any(|a| a == "--progress");
    let progress = |label: &'static str| {
        move |p: CampaignProgress| {
            match p.eta_us() {
                Some(eta) => eprint!(
                    "\r{label}: {}/{} ({:.1} inj/s, eta {:.1}s) ",
                    p.completed,
                    p.total,
                    p.rate(),
                    eta as f64 / 1e6
                ),
                None => eprint!("\r{label}: {}/{}", p.completed, p.total),
            }
            if p.completed == p.total {
                eprintln!();
            }
        }
    };

    let run = |monitor: MonitorMode, label: &'static str, traced: bool| {
        let mut runner = bw
            .campaign_runner(injections, model, n)
            .workers(workers)
            .engine(kind)
            .monitor(monitor)
            .monitor_shards(shards);
        let callback = progress(label);
        if show_progress {
            runner = runner.on_progress(callback);
        }
        if traced {
            if let Some(recorder) = &recorder {
                runner = runner.recorder(recorder.as_ref());
            }
        }
        runner.run().map_err(|e| e.to_string())
    };

    // Only the protected campaign is traced: the JSONL file then describes
    // one campaign, not two interleaved ones. The span sink comes down
    // before the baseline campaign for the same reason.
    let trace = trace_spans_guard(rest, recorder.as_ref())?;
    let protected = run(MonitorMode::Enabled, "with BLOCKWATCH", true)?;
    drop(trace);
    let baseline = run(MonitorMode::Off, "without BLOCKWATCH", false)?;
    obs.finish();

    println!("{model:?}, {injections} injections, {n} threads, {} engine", kind.name());
    println!("  without BLOCKWATCH: {:?}", baseline.counts);
    println!("  with    BLOCKWATCH: {:?}", protected.counts);
    println!(
        "  coverage: {:.1}% -> {:.1}%",
        100.0 * baseline.coverage(),
        100.0 * protected.coverage()
    );
    for w in &protected.worker_stats {
        println!(
            "  worker {:<3} {} injections, {:.1} inj/s",
            w.worker,
            w.injections,
            w.throughput()
        );
    }
    warn_dropped(&protected.telemetry);
    if let Some(recorder) = &recorder {
        protected.telemetry.record_to(recorder.as_ref());
        recorder.flush();
    }
    if rest.iter().any(|a| a == "--stats") {
        print!("{}", render_telemetry(&protected.telemetry));
    }
    Ok(())
}
