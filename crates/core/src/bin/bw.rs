//! `bw` — the BLOCKWATCH command-line tool.
//!
//! Compile, analyze, protect and fault-test SPMD mini-language programs:
//!
//! ```text
//! bw analyze  <file>                 print per-branch similarity categories
//! bw run      <file> [--threads N]   run under the monitor (simulated machine)
//! bw ir       <file>                 dump the SSA IR
//! bw campaign <file> [--threads N] [--injections K] [--model flip|cond]
//!             [--workers W] [--progress]
//!                                    fault-injection campaign with and
//!                                    without BLOCKWATCH
//! ```

use std::process::ExitCode;

use blockwatch::ir::ModulePrinter;
use blockwatch::vm::MonitorMode;
use blockwatch::{Blockwatch, CampaignProgress, FaultModel, RunOutcome};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match command.as_str() {
        "analyze" => cmd_analyze(rest),
        "run" => cmd_run(rest),
        "ir" => cmd_ir(rest),
        "campaign" => cmd_campaign(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  bw analyze  <file>                  print per-branch similarity categories
  bw run      <file> [--threads N]    run under the monitor
  bw ir       <file>                  dump the SSA IR
  bw campaign <file> [--threads N] [--injections K] [--model flip|cond]
              [--workers W] [--progress]";

fn load(path: &str) -> Result<Blockwatch, String> {
    let source =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    Blockwatch::compile(&source).map_err(|e| format!("{e}"))
}

fn flag(rest: &[String], name: &str) -> Option<String> {
    rest.iter().position(|a| a == name).and_then(|i| rest.get(i + 1)).cloned()
}

fn file_arg(rest: &[String]) -> Result<String, String> {
    rest.iter()
        .find(|a| !a.starts_with("--") && rest.iter().position(|b| b == *a).is_some_and(|i| i == 0 || !rest[i - 1].starts_with("--")))
        .cloned()
        .ok_or_else(|| format!("missing <file> argument\n{USAGE}"))
}

fn threads(rest: &[String]) -> u32 {
    flag(rest, "--threads").and_then(|s| s.parse().ok()).unwrap_or(4)
}

fn cmd_analyze(rest: &[String]) -> Result<(), String> {
    let bw = load(&file_arg(rest)?)?;
    println!("{:<8} {:<20} {:<10} {:<6} check", "branch", "function", "category", "depth");
    for b in bw.analysis().branches.iter() {
        let func = &bw.image().module.func(b.func).name;
        let check = match bw.plan().check(b.id) {
            Some(c) => format!("{:?}", c.kind),
            None => {
                let reason = bw.plan().decisions[b.id.index()].as_ref().unwrap_err();
                format!("skipped ({reason:?})")
            }
        };
        println!(
            "{:<8} {:<20} {:<10} {:<6} {}",
            b.id.to_string(),
            func,
            b.category.to_string(),
            b.loop_depth,
            check
        );
    }
    let h = bw.histogram();
    println!(
        "\nparallel section: {} branches | {} shared, {} threadID, {} partial, {} none | {} instrumented",
        h.total(),
        h.shared,
        h.thread_id,
        h.partial,
        h.none,
        bw.plan().num_instrumented()
    );
    Ok(())
}

fn cmd_run(rest: &[String]) -> Result<(), String> {
    let bw = load(&file_arg(rest)?)?;
    let n = threads(rest);
    let result = bw.run(n);
    println!("outcome: {:?}", result.outcome);
    println!("outputs: {:?}", result.outputs);
    println!(
        "parallel cycles: {} | events: {} | violations: {}",
        result.parallel_cycles,
        result.events_sent,
        result.violations.len()
    );
    for v in &result.violations {
        println!("  violation: branch {} {:?} ({} reporters)", v.branch, v.kind, v.reporters);
    }
    if result.outcome != RunOutcome::Completed {
        return Err("program did not complete".into());
    }
    Ok(())
}

fn cmd_ir(rest: &[String]) -> Result<(), String> {
    let bw = load(&file_arg(rest)?)?;
    println!("{}", ModulePrinter(&bw.image().module));
    Ok(())
}

fn cmd_campaign(rest: &[String]) -> Result<(), String> {
    let bw = load(&file_arg(rest)?)?;
    let n = threads(rest);
    let injections =
        flag(rest, "--injections").and_then(|s| s.parse().ok()).unwrap_or(200);
    let model = match flag(rest, "--model").as_deref() {
        None | Some("flip") => FaultModel::BranchFlip,
        Some("cond") => FaultModel::ConditionBitFlip,
        Some(other) => return Err(format!("unknown model `{other}` (use flip|cond)")),
    };

    let workers = flag(rest, "--workers").and_then(|s| s.parse().ok()).unwrap_or(0);
    let show_progress = rest.iter().any(|a| a == "--progress");
    let progress = |label: &'static str| {
        move |p: CampaignProgress| {
            eprint!("\r{label}: {}/{}", p.completed, p.total);
            if p.completed == p.total {
                eprintln!();
            }
        }
    };

    let run = |monitor: MonitorMode, label: &'static str| {
        let mut runner = bw
            .campaign_runner(injections, model, n)
            .workers(workers)
            .monitor(monitor);
        let callback = progress(label);
        if show_progress {
            runner = runner.on_progress(callback);
        }
        runner.run().map_err(|e| e.to_string())
    };

    let protected = run(MonitorMode::Enabled, "with BLOCKWATCH")?;
    let baseline = run(MonitorMode::Off, "without BLOCKWATCH")?;

    println!("{model:?}, {injections} injections, {n} threads");
    println!("  without BLOCKWATCH: {:?}", baseline.counts);
    println!("  with    BLOCKWATCH: {:?}", protected.counts);
    println!(
        "  coverage: {:.1}% -> {:.1}%",
        100.0 * baseline.coverage(),
        100.0 * protected.coverage()
    );
    Ok(())
}
