//! Experiment harnesses regenerating the paper's tables and figures.
//!
//! Each function produces the structured rows/series behind one exhibit;
//! the `bw-bench` binaries print them, and the integration tests assert
//! their *shape* against the paper (who wins, by roughly what factor,
//! where the crossovers fall — absolute numbers come from a cost-model
//! simulator, not the authors' 32-core testbed).

use bw_analysis::ModuleAnalysis;
use bw_fault::{CampaignConfig, FaultModel, OutcomeCounts};
use bw_splash::{Benchmark, Size};
use bw_vm::{
    run_sim, ExecMode, MonitorMode, ProgramImage, RunOutcome, SimConfig,
};
use serde::{Deserialize, Serialize};

use crate::{Blockwatch, Error};

/// A row of Table IV: benchmark characteristics.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CharacteristicsRow {
    /// Benchmark name (paper's spelling).
    pub name: String,
    /// Source lines of the port (mini language).
    pub source_lines: usize,
    /// IR instructions in the whole module.
    pub instructions: usize,
    /// IR instructions in the parallel section.
    pub parallel_instructions: usize,
    /// Total conditional branches.
    pub branches: usize,
    /// Branches in the parallel section.
    pub parallel_branches: usize,
}

/// Regenerates Table IV (characteristics of the benchmark programs) from
/// the ports at `size`.
pub fn table4(size: Size) -> Vec<CharacteristicsRow> {
    Benchmark::ALL
        .iter()
        .map(|&bench| {
            let src = bench.source(size);
            let module = bench.module(size).expect("port compiles");
            let analysis = ModuleAnalysis::run(&module);
            let parallel_instructions = module
                .iter_funcs()
                .filter(|(fid, _)| analysis.parallel_funcs[fid.index()])
                .map(|(_, f)| f.num_insts())
                .sum();
            CharacteristicsRow {
                name: bench.name().to_string(),
                source_lines: src.lines().filter(|l| !l.trim().is_empty()).count(),
                instructions: module.num_insts(),
                parallel_instructions,
                branches: module.num_branches(),
                parallel_branches: analysis.parallel_branches().count(),
            }
        })
        .collect()
}

/// A row of Table V: similarity-category statistics.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SimilarityRow {
    /// Benchmark name.
    pub name: String,
    /// Total parallel-section branches.
    pub total: usize,
    /// `shared` count.
    pub shared: usize,
    /// `threadID` count.
    pub thread_id: usize,
    /// `partial` count.
    pub partial: usize,
    /// `none` count.
    pub none: usize,
}

impl SimilarityRow {
    /// Fraction of branches statically identified as similar.
    pub fn similar_fraction(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        (self.shared + self.thread_id + self.partial) as f64 / self.total as f64
    }
}

/// Regenerates Table V (similarity-category statistics of the branches).
pub fn table5(size: Size) -> Vec<SimilarityRow> {
    Benchmark::ALL
        .iter()
        .map(|&bench| {
            let module = bench.module(size).expect("port compiles");
            let h = ModuleAnalysis::run(&module).category_histogram();
            SimilarityRow {
                name: bench.name().to_string(),
                total: h.total(),
                shared: h.shared,
                thread_id: h.thread_id,
                partial: h.partial,
                none: h.none,
            }
        })
        .collect()
}

/// One point of the Figure 6/7 performance series.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct OverheadPoint {
    /// Thread count.
    pub nthreads: u32,
    /// Parallel-section cycles without BLOCKWATCH.
    pub baseline_cycles: u64,
    /// Parallel-section cycles with BLOCKWATCH.
    pub protected_cycles: u64,
}

impl OverheadPoint {
    /// Normalized execution time (the paper's y-axis; 1.0 = baseline).
    pub fn ratio(&self) -> f64 {
        self.protected_cycles as f64 / self.baseline_cycles.max(1) as f64
    }
}

/// Measures one benchmark's overhead at one thread count.
///
/// Instrumented runs use `SendOnly` at the machine's full width (the
/// paper's methodology: the monitor thread is disabled when all cores are
/// occupied, but the sends still happen) and the full monitor otherwise;
/// the simulated cost is identical because monitor processing is not
/// charged to application threads.
pub fn overhead_point(image: &ProgramImage, nthreads: u32) -> OverheadPoint {
    let mut baseline = SimConfig::new(nthreads);
    baseline.monitor = MonitorMode::Off;
    let base = run_sim(image, &baseline);
    assert_eq!(base.outcome, RunOutcome::Completed, "baseline must complete");

    let mut protected = SimConfig::new(nthreads);
    protected.monitor = if nthreads >= protected.machine.cores() {
        MonitorMode::SendOnly
    } else {
        MonitorMode::Enabled
    };
    let prot = run_sim(image, &protected);
    assert_eq!(prot.outcome, RunOutcome::Completed, "protected must complete");
    assert!(!prot.detected(), "no false positives in performance runs");

    OverheadPoint {
        nthreads,
        baseline_cycles: base.parallel_cycles,
        protected_cycles: prot.parallel_cycles,
    }
}

/// A benchmark's overhead across thread counts (one Figure 6/7 series).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct OverheadSeries {
    /// Benchmark name.
    pub name: String,
    /// One point per requested thread count.
    pub points: Vec<OverheadPoint>,
}

/// Regenerates the Figure 6/7 measurements: per-benchmark normalized
/// execution times at each thread count in `threads`.
pub fn overhead_series(size: Size, threads: &[u32]) -> Vec<OverheadSeries> {
    Benchmark::ALL
        .iter()
        .map(|&bench| {
            let image =
                ProgramImage::prepare_default(bench.module(size).expect("port compiles"));
            let points = threads.iter().map(|&n| overhead_point(&image, n)).collect();
            OverheadSeries { name: bench.name().to_string(), points }
        })
        .collect()
}

/// Geometric mean of the overhead ratios at one thread count across all
/// series (the paper's Figure 7 y-axis).
pub fn geomean_at(series: &[OverheadSeries], nthreads: u32) -> f64 {
    let ratios: Vec<f64> = series
        .iter()
        .filter_map(|s| s.points.iter().find(|p| p.nthreads == nthreads).map(OverheadPoint::ratio))
        .collect();
    geomean(&ratios)
}

/// Geometric mean.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

/// One bar pair of Figures 8/9: coverage with and without BLOCKWATCH.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CoverageRow {
    /// Benchmark name.
    pub name: String,
    /// Thread count of the campaign.
    pub nthreads: u32,
    /// Fault model.
    pub model: FaultModel,
    /// Outcome counts without BLOCKWATCH.
    pub original: OutcomeCounts,
    /// Outcome counts with BLOCKWATCH.
    pub protected: OutcomeCounts,
}

impl CoverageRow {
    /// `coverage_original` (the light bar).
    pub fn coverage_original(&self) -> f64 {
        self.original.coverage()
    }

    /// `coverage_BLOCKWATCH` (the full bar).
    pub fn coverage_protected(&self) -> f64 {
        self.protected.coverage()
    }
}

/// Runs the paired (with/without BLOCKWATCH) fault-injection campaigns for
/// one benchmark — one bar pair of Figure 8 (`BranchFlip`) or Figure 9
/// (`ConditionBitFlip`). The same seed drives both campaigns, so the
/// injection targets are identical.
///
/// Prepares a fresh image per call; use [`coverage_row_on`] to amortize
/// one prepared program (and its cached golden runs) across thread counts
/// and fault models.
pub fn coverage_row(
    bench: Benchmark,
    size: Size,
    model: FaultModel,
    nthreads: u32,
    injections: usize,
    seed: u64,
) -> Result<CoverageRow, Error> {
    let bw = Blockwatch::from_module(bench.module(size)?)?;
    coverage_row_on(&bw, bench.name(), model, nthreads, injections, seed, 0)
}

/// [`coverage_row`] on an already-prepared program: the 4- and 32-thread
/// campaigns of Figures 8/9 (and both fault models) reuse one image, and
/// golden runs are cached per simulation configuration on `bw`. Campaign
/// experiments run on `workers` threads (`0` = available parallelism);
/// results are identical for any worker count.
#[allow(clippy::too_many_arguments)]
pub fn coverage_row_on(
    bw: &Blockwatch,
    name: &str,
    model: FaultModel,
    nthreads: u32,
    injections: usize,
    seed: u64,
    workers: usize,
) -> Result<CoverageRow, Error> {
    let protected_cfg =
        CampaignConfig::new(injections, model, nthreads).seed(seed).workers(workers);
    let protected = bw.campaign(&protected_cfg)?;

    let mut original_cfg = protected_cfg.clone();
    original_cfg.sim.monitor = MonitorMode::Off;
    let original = bw.campaign(&original_cfg)?;

    Ok(CoverageRow {
        name: name.to_string(),
        nthreads,
        model,
        original: original.counts,
        protected: protected.counts,
    })
}

/// One point of the Section VI duplication comparison.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct DuplicationPoint {
    /// Thread count.
    pub nthreads: u32,
    /// BLOCKWATCH overhead ratio.
    pub blockwatch: f64,
    /// Software-duplication overhead ratio.
    pub duplication: f64,
}

/// Compares BLOCKWATCH and software duplication (DMR) overheads across
/// thread counts for one benchmark (Section VI).
pub fn duplication_comparison(
    bench: Benchmark,
    size: Size,
    threads: &[u32],
) -> Vec<DuplicationPoint> {
    let image = ProgramImage::prepare_default(bench.module(size).expect("port compiles"));
    threads
        .iter()
        .map(|&n| {
            let bw = overhead_point(&image, n);

            let mut base = SimConfig::new(n);
            base.monitor = MonitorMode::Off;
            let baseline = run_sim(&image, &base);

            let mut dup = base.clone();
            dup.exec = ExecMode::Duplicated;
            let duplicated = run_sim(&image, &dup);

            DuplicationPoint {
                nthreads: n,
                blockwatch: bw.ratio(),
                duplication: duplicated.parallel_cycles as f64
                    / baseline.parallel_cycles.max(1) as f64,
            }
        })
        .collect()
}

/// Runs the paper's false-positive experiment: `runs` fault-free runs per
/// benchmark, expecting zero violations. Returns per-benchmark FP counts.
pub fn false_positive_sweep(size: Size, nthreads: u32, runs: usize) -> Vec<(String, usize)> {
    Benchmark::ALL
        .iter()
        .map(|&bench| {
            let image =
                ProgramImage::prepare_default(bench.module(size).expect("port compiles"));
            let fps = bw_fault::false_positive_runs(&image, &SimConfig::new(nthreads), runs);
            (bench.name().to_string(), fps)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!(geomean(&[]).is_nan());
    }

    #[test]
    fn table4_covers_all_benchmarks() {
        let rows = table4(Size::Test);
        assert_eq!(rows.len(), 7);
        for row in &rows {
            assert!(row.branches >= row.parallel_branches);
            assert!(row.parallel_branches > 0, "{}", row.name);
            assert!(row.instructions >= row.parallel_instructions);
        }
    }

    #[test]
    fn table5_shapes_match_paper() {
        let rows = table5(Size::Test);
        assert_eq!(rows.len(), 7);
        // Paper: 49–98 % of branches are similar in every program.
        for row in &rows {
            let f = row.similar_fraction();
            assert!(f >= 0.45, "{}: similar fraction {f}", row.name);
        }
        // ocean-contiguous is partial-dominated.
        let ocean = &rows[0];
        assert!(ocean.partial * 100 >= ocean.total * 70, "{ocean:?}");
        // FMM and raytrace have the largest `none` shares.
        let fmm_none = rows[2].none as f64 / rows[2].total as f64;
        let ray_none = rows[5].none as f64 / rows[5].total as f64;
        for (i, row) in rows.iter().enumerate() {
            if i != 2 && i != 5 {
                let none_frac = row.none as f64 / row.total.max(1) as f64;
                assert!(
                    none_frac <= fmm_none.max(ray_none) + 1e-9,
                    "{} none fraction {none_frac} exceeds FMM/raytrace",
                    row.name
                );
            }
        }
    }
}
