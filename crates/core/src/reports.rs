//! Experiment harnesses regenerating the paper's tables and figures.
//!
//! Each function produces the structured rows/series behind one exhibit;
//! the `bw-bench` binaries print them, and the integration tests assert
//! their *shape* against the paper (who wins, by roughly what factor,
//! where the crossovers fall — absolute numbers come from a cost-model
//! simulator, not the authors' 32-core testbed).

use std::fmt::Write as _;

use bw_analysis::ModuleAnalysis;
use bw_fault::{CampaignConfig, FaultModel, OutcomeCounts};
use bw_splash::{Benchmark, Size};
use bw_telemetry::{parse_flat_object, TelemetrySnapshot, Value};
use bw_vm::{
    run_sim, ExecMode, MonitorMode, ProgramImage, RunOutcome, SimConfig,
};
use serde::{Deserialize, Serialize};

use crate::{Blockwatch, Error};

/// A row of Table IV: benchmark characteristics.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CharacteristicsRow {
    /// Benchmark name (paper's spelling).
    pub name: String,
    /// Source lines of the port (mini language).
    pub source_lines: usize,
    /// IR instructions in the whole module.
    pub instructions: usize,
    /// IR instructions in the parallel section.
    pub parallel_instructions: usize,
    /// Total conditional branches.
    pub branches: usize,
    /// Branches in the parallel section.
    pub parallel_branches: usize,
}

/// Regenerates Table IV (characteristics of the benchmark programs) from
/// the ports at `size`.
pub fn table4(size: Size) -> Vec<CharacteristicsRow> {
    Benchmark::ALL
        .iter()
        .map(|&bench| {
            let src = bench.source(size);
            let module = bench.module(size).expect("port compiles");
            let analysis = ModuleAnalysis::run(&module);
            let parallel_instructions = module
                .iter_funcs()
                .filter(|(fid, _)| analysis.parallel_funcs[fid.index()])
                .map(|(_, f)| f.num_insts())
                .sum();
            CharacteristicsRow {
                name: bench.name().to_string(),
                source_lines: src.lines().filter(|l| !l.trim().is_empty()).count(),
                instructions: module.num_insts(),
                parallel_instructions,
                branches: module.num_branches(),
                parallel_branches: analysis.parallel_branches().count(),
            }
        })
        .collect()
}

/// A row of Table V: similarity-category statistics.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SimilarityRow {
    /// Benchmark name.
    pub name: String,
    /// Total parallel-section branches.
    pub total: usize,
    /// `shared` count.
    pub shared: usize,
    /// `threadID` count.
    pub thread_id: usize,
    /// `partial` count.
    pub partial: usize,
    /// `none` count.
    pub none: usize,
}

impl SimilarityRow {
    /// Fraction of branches statically identified as similar.
    pub fn similar_fraction(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        (self.shared + self.thread_id + self.partial) as f64 / self.total as f64
    }
}

/// Regenerates Table V (similarity-category statistics of the branches).
pub fn table5(size: Size) -> Vec<SimilarityRow> {
    Benchmark::ALL
        .iter()
        .map(|&bench| {
            let module = bench.module(size).expect("port compiles");
            let h = ModuleAnalysis::run(&module).category_histogram();
            SimilarityRow {
                name: bench.name().to_string(),
                total: h.total(),
                shared: h.shared,
                thread_id: h.thread_id,
                partial: h.partial,
                none: h.none,
            }
        })
        .collect()
}

/// One point of the Figure 6/7 performance series.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct OverheadPoint {
    /// Thread count.
    pub nthreads: u32,
    /// Parallel-section cycles without BLOCKWATCH.
    pub baseline_cycles: u64,
    /// Parallel-section cycles with BLOCKWATCH.
    pub protected_cycles: u64,
}

impl OverheadPoint {
    /// Normalized execution time (the paper's y-axis; 1.0 = baseline).
    pub fn ratio(&self) -> f64 {
        self.protected_cycles as f64 / self.baseline_cycles.max(1) as f64
    }
}

/// Measures one benchmark's overhead at one thread count.
///
/// Instrumented runs use `SendOnly` at the machine's full width (the
/// paper's methodology: the monitor thread is disabled when all cores are
/// occupied, but the sends still happen) and the full monitor otherwise;
/// the simulated cost is identical because monitor processing is not
/// charged to application threads.
pub fn overhead_point(image: &ProgramImage, nthreads: u32) -> OverheadPoint {
    let mut baseline = SimConfig::new(nthreads);
    baseline.monitor = MonitorMode::Off;
    let base = run_sim(image, &baseline);
    assert_eq!(base.outcome, RunOutcome::Completed, "baseline must complete");

    let mut protected = SimConfig::new(nthreads);
    protected.monitor = if nthreads >= protected.machine.cores() {
        MonitorMode::SendOnly
    } else {
        MonitorMode::Enabled
    };
    let prot = run_sim(image, &protected);
    assert_eq!(prot.outcome, RunOutcome::Completed, "protected must complete");
    assert!(!prot.detected(), "no false positives in performance runs");

    OverheadPoint {
        nthreads,
        baseline_cycles: base.parallel_cycles,
        protected_cycles: prot.parallel_cycles,
    }
}

/// A benchmark's overhead across thread counts (one Figure 6/7 series).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct OverheadSeries {
    /// Benchmark name.
    pub name: String,
    /// One point per requested thread count.
    pub points: Vec<OverheadPoint>,
}

/// Regenerates the Figure 6/7 measurements: per-benchmark normalized
/// execution times at each thread count in `threads`.
pub fn overhead_series(size: Size, threads: &[u32]) -> Vec<OverheadSeries> {
    Benchmark::ALL
        .iter()
        .map(|&bench| {
            let image =
                ProgramImage::prepare_default(bench.module(size).expect("port compiles"));
            let points = threads.iter().map(|&n| overhead_point(&image, n)).collect();
            OverheadSeries { name: bench.name().to_string(), points }
        })
        .collect()
}

/// Geometric mean of the overhead ratios at one thread count across all
/// series (the paper's Figure 7 y-axis).
pub fn geomean_at(series: &[OverheadSeries], nthreads: u32) -> f64 {
    let ratios: Vec<f64> = series
        .iter()
        .filter_map(|s| s.points.iter().find(|p| p.nthreads == nthreads).map(OverheadPoint::ratio))
        .collect();
    geomean(&ratios)
}

/// Geometric mean.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

/// One bar pair of Figures 8/9: coverage with and without BLOCKWATCH.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CoverageRow {
    /// Benchmark name.
    pub name: String,
    /// Thread count of the campaign.
    pub nthreads: u32,
    /// Fault model.
    pub model: FaultModel,
    /// Outcome counts without BLOCKWATCH.
    pub original: OutcomeCounts,
    /// Outcome counts with BLOCKWATCH.
    pub protected: OutcomeCounts,
}

impl CoverageRow {
    /// `coverage_original` (the light bar).
    pub fn coverage_original(&self) -> f64 {
        self.original.coverage()
    }

    /// `coverage_BLOCKWATCH` (the full bar).
    pub fn coverage_protected(&self) -> f64 {
        self.protected.coverage()
    }
}

/// Runs the paired (with/without BLOCKWATCH) fault-injection campaigns for
/// one benchmark — one bar pair of Figure 8 (`BranchFlip`) or Figure 9
/// (`ConditionBitFlip`). The same seed drives both campaigns, so the
/// injection targets are identical.
///
/// Prepares a fresh image per call; use [`coverage_row_on`] to amortize
/// one prepared program (and its cached golden runs) across thread counts
/// and fault models.
pub fn coverage_row(
    bench: Benchmark,
    size: Size,
    model: FaultModel,
    nthreads: u32,
    injections: usize,
    seed: u64,
) -> Result<CoverageRow, Error> {
    let bw = Blockwatch::from_module(bench.module(size)?)?;
    coverage_row_on(&bw, bench.name(), model, nthreads, injections, seed, 0)
}

/// [`coverage_row`] on an already-prepared program: the 4- and 32-thread
/// campaigns of Figures 8/9 (and both fault models) reuse one image, and
/// golden runs are cached per simulation configuration on `bw`. Campaign
/// experiments run on `workers` threads (`0` = available parallelism);
/// results are identical for any worker count.
#[allow(clippy::too_many_arguments)]
pub fn coverage_row_on(
    bw: &Blockwatch,
    name: &str,
    model: FaultModel,
    nthreads: u32,
    injections: usize,
    seed: u64,
    workers: usize,
) -> Result<CoverageRow, Error> {
    let protected_cfg =
        CampaignConfig::new(injections, model, nthreads).seed(seed).workers(workers);
    let protected = bw.campaign(&protected_cfg)?;

    let mut original_cfg = protected_cfg.clone();
    original_cfg.sim.monitor = MonitorMode::Off;
    let original = bw.campaign(&original_cfg)?;

    Ok(CoverageRow {
        name: name.to_string(),
        nthreads,
        model,
        original: original.counts,
        protected: protected.counts,
    })
}

/// One point of the Section VI duplication comparison.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct DuplicationPoint {
    /// Thread count.
    pub nthreads: u32,
    /// BLOCKWATCH overhead ratio.
    pub blockwatch: f64,
    /// Software-duplication overhead ratio.
    pub duplication: f64,
}

/// Compares BLOCKWATCH and software duplication (DMR) overheads across
/// thread counts for one benchmark (Section VI).
pub fn duplication_comparison(
    bench: Benchmark,
    size: Size,
    threads: &[u32],
) -> Vec<DuplicationPoint> {
    let image = ProgramImage::prepare_default(bench.module(size).expect("port compiles"));
    threads
        .iter()
        .map(|&n| {
            let bw = overhead_point(&image, n);

            let mut base = SimConfig::new(n);
            base.monitor = MonitorMode::Off;
            let baseline = run_sim(&image, &base);

            let mut dup = base.clone();
            dup.exec = ExecMode::Duplicated;
            let duplicated = run_sim(&image, &dup);

            DuplicationPoint {
                nthreads: n,
                blockwatch: bw.ratio(),
                duplication: duplicated.parallel_cycles as f64
                    / baseline.parallel_cycles.max(1) as f64,
            }
        })
        .collect()
}

/// Runs the paper's false-positive experiment: `runs` fault-free runs per
/// benchmark, expecting zero violations. Returns per-benchmark FP counts.
pub fn false_positive_sweep(size: Size, nthreads: u32, runs: usize) -> Vec<(String, usize)> {
    Benchmark::ALL
        .iter()
        .map(|&bench| {
            let image =
                ProgramImage::prepare_default(bench.module(size).expect("port compiles"));
            let fps = bw_fault::false_positive_runs(&image, &SimConfig::new(nthreads), runs);
            (bench.name().to_string(), fps)
        })
        .collect()
}

/// Renders a [`TelemetrySnapshot`] as a human-readable summary table:
/// counters, gauges, then histogram aggregates (count / mean / max).
pub fn render_telemetry(snapshot: &TelemetrySnapshot) -> String {
    let mut out = String::new();
    let width = snapshot
        .counters()
        .iter()
        .map(|(n, _)| n.len())
        .chain(snapshot.gauges().iter().map(|(n, _)| n.len()))
        .chain(snapshot.histograms().iter().map(|(n, _)| n.len()))
        .max()
        .unwrap_or(0);
    if !snapshot.counters().is_empty() {
        out.push_str("counters:\n");
        for (name, value) in snapshot.counters() {
            let _ = writeln!(out, "  {name:<width$}  {value}");
        }
    }
    if !snapshot.gauges().is_empty() {
        out.push_str("gauges (high-water marks):\n");
        for (name, value) in snapshot.gauges() {
            let _ = writeln!(out, "  {name:<width$}  {value}");
        }
    }
    if !snapshot.histograms().is_empty() {
        out.push_str("histograms (wall-clock, nondeterministic):\n");
        for (name, h) in snapshot.histograms() {
            let _ = writeln!(
                out,
                "  {name:<width$}  count {}  mean {:.1}  max {}",
                h.count,
                h.mean(),
                h.max
            );
        }
    }
    if out.is_empty() {
        out.push_str("(no telemetry recorded)\n");
    }
    out
}

/// Aggregate duration statistics (microseconds).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DurStat {
    /// Observations.
    pub count: u64,
    /// Sum of all durations.
    pub total_us: u64,
    /// Largest single duration.
    pub max_us: u64,
}

impl DurStat {
    fn observe(&mut self, us: u64) {
        self.count += 1;
        self.total_us += us;
        self.max_us = self.max_us.max(us);
    }

    /// Mean duration in microseconds.
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.total_us as f64 / self.count as f64
    }
}

/// Aggregated timings of one span name across a trace.
#[derive(Clone, Debug, Default)]
pub struct SpanStat {
    /// Span name.
    pub name: String,
    /// Duration aggregate.
    pub dur: DurStat,
}

/// One worker's statistics reconstructed from a trace's `worker` records.
#[derive(Clone, Copy, Debug, Default)]
pub struct TraceWorker {
    /// Worker index.
    pub worker: u64,
    /// Injections the worker executed.
    pub injections: u64,
    /// Worker wall-clock microseconds.
    pub wall_us: u64,
    /// Microseconds inside injection runs.
    pub busy_us: u64,
}

impl TraceWorker {
    /// Injections per second over the worker's wall time.
    pub fn throughput(&self) -> f64 {
        if self.wall_us == 0 {
            return 0.0;
        }
        self.injections as f64 * 1e6 / self.wall_us as f64
    }
}

/// Histogram aggregate reconstructed from a trace's `histogram` records.
#[derive(Clone, Debug, Default)]
pub struct TraceHistogram {
    /// Metric name.
    pub name: String,
    /// Observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Largest observed value.
    pub max: u64,
}

/// An aggregated view of a JSONL telemetry trace — what `bw stats` prints.
///
/// The trace is the output of a [`bw_telemetry::JsonlRecorder`]: one flat
/// JSON object per line, each with an `ev` field naming the record type.
/// Counter records accumulate, gauges keep their maximum, spans and
/// injections aggregate durations per name.
#[derive(Clone, Debug, Default)]
pub struct TraceSummary {
    /// Total records parsed.
    pub records: u64,
    /// Record counts per `ev` type, sorted by name.
    pub events: Vec<(String, u64)>,
    /// Span timings per span name, sorted by name.
    pub spans: Vec<SpanStat>,
    /// Final counter values, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Final gauge values (maxima), sorted by name.
    pub gauges: Vec<(String, u64)>,
    /// Histogram aggregates, sorted by name.
    pub histograms: Vec<TraceHistogram>,
    /// Injection counts per outcome name, sorted by name.
    pub injections: Vec<(String, u64)>,
    /// Injection duration aggregate.
    pub injection_us: DurStat,
    /// Per-worker statistics, sorted by worker index.
    pub workers: Vec<TraceWorker>,
}

fn field<'a>(fields: &'a [(String, Value)], name: &str) -> Option<&'a Value> {
    fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

fn field_u64(fields: &[(String, Value)], name: &str) -> u64 {
    field(fields, name).and_then(Value::as_u64).unwrap_or(0)
}

fn bump(list: &mut Vec<(String, u64)>, name: &str, value: u64, accumulate: bool) {
    match list.iter_mut().find(|(n, _)| n == name) {
        Some((_, v)) if accumulate => *v += value,
        Some((_, v)) => *v = (*v).max(value),
        None => list.push((name.to_string(), value)),
    }
}

impl TraceSummary {
    /// Parses a JSONL trace. Blank lines are skipped; a malformed line
    /// fails the whole parse with its line number.
    pub fn parse(text: &str) -> Result<TraceSummary, String> {
        let mut summary = TraceSummary::default();
        for (lineno, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let fields = parse_flat_object(line)
                .map_err(|e| format!("line {}: {} (offset {})", lineno + 1, e.message, e.offset))?;
            let ev = field(&fields, "ev")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("line {}: record has no `ev` field", lineno + 1))?
                .to_string();
            summary.records += 1;
            bump(&mut summary.events, &ev, 1, true);
            match ev.as_str() {
                "span" => {
                    let name = field(&fields, "name").and_then(Value::as_str).unwrap_or("?");
                    let dur = field_u64(&fields, "dur_us");
                    match summary.spans.iter_mut().find(|s| s.name == name) {
                        Some(s) => s.dur.observe(dur),
                        None => {
                            let mut s = SpanStat { name: name.to_string(), dur: DurStat::default() };
                            s.dur.observe(dur);
                            summary.spans.push(s);
                        }
                    }
                }
                "counter" | "gauge" => {
                    let name = field(&fields, "name").and_then(Value::as_str).unwrap_or("?");
                    let value = field_u64(&fields, "value");
                    if ev == "counter" {
                        bump(&mut summary.counters, name, value, true);
                    } else {
                        bump(&mut summary.gauges, name, value, false);
                    }
                }
                "histogram" => {
                    let name = field(&fields, "name").and_then(Value::as_str).unwrap_or("?");
                    let (count, sum, max) = (
                        field_u64(&fields, "count"),
                        field_u64(&fields, "sum"),
                        field_u64(&fields, "max"),
                    );
                    match summary.histograms.iter_mut().find(|h| h.name == name) {
                        Some(h) => {
                            h.count += count;
                            h.sum += sum;
                            h.max = h.max.max(max);
                        }
                        None => summary.histograms.push(TraceHistogram {
                            name: name.to_string(),
                            count,
                            sum,
                            max,
                        }),
                    }
                }
                "injection" => {
                    let outcome =
                        field(&fields, "outcome").and_then(Value::as_str).unwrap_or("?");
                    bump(&mut summary.injections, outcome, 1, true);
                    summary.injection_us.observe(field_u64(&fields, "dur_us"));
                }
                "worker" => summary.workers.push(TraceWorker {
                    worker: field_u64(&fields, "worker"),
                    injections: field_u64(&fields, "injections"),
                    wall_us: field_u64(&fields, "wall_us"),
                    busy_us: field_u64(&fields, "busy_us"),
                }),
                _ => {}
            }
        }
        summary.events.sort();
        summary.spans.sort_by(|a, b| a.name.cmp(&b.name));
        summary.counters.sort();
        summary.gauges.sort();
        summary.histograms.sort_by(|a, b| a.name.cmp(&b.name));
        summary.injections.sort();
        summary.workers.sort_by_key(|w| w.worker);
        Ok(summary)
    }

    /// Renders the summary as the human-readable `bw stats` report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{} records", self.records);
        if !self.events.is_empty() {
            out.push_str("events:");
            for (name, count) in &self.events {
                let _ = write!(out, "  {name}={count}");
            }
            out.push('\n');
        }
        let mut snapshot = TelemetrySnapshot::new();
        for (name, value) in &self.counters {
            snapshot.push_counter(name.as_str(), *value);
        }
        for (name, value) in &self.gauges {
            snapshot.push_gauge(name.as_str(), *value);
        }
        out.push_str(&render_telemetry(&snapshot));
        if !self.histograms.is_empty() {
            out.push_str("histogram aggregates:\n");
            for h in &self.histograms {
                let mean = if h.count == 0 { 0.0 } else { h.sum as f64 / h.count as f64 };
                let _ = writeln!(
                    out,
                    "  {:<28}  count {}  mean {mean:.1}  max {}",
                    h.name, h.count, h.max
                );
            }
        }
        if !self.spans.is_empty() {
            out.push_str("spans:\n");
            for s in &self.spans {
                let _ = writeln!(
                    out,
                    "  {:<28}  count {}  total {} us  mean {:.1} us  max {} us",
                    s.name, s.dur.count, s.dur.total_us, s.dur.mean_us(), s.dur.max_us
                );
            }
        }
        if !self.injections.is_empty() {
            out.push_str("injections:");
            for (outcome, count) in &self.injections {
                let _ = write!(out, "  {outcome}={count}");
            }
            let _ = writeln!(
                out,
                "\n  duration: mean {:.1} us, max {} us over {} runs",
                self.injection_us.mean_us(),
                self.injection_us.max_us,
                self.injection_us.count
            );
        }
        if !self.workers.is_empty() {
            out.push_str("workers:\n");
            for w in &self.workers {
                let _ = writeln!(
                    out,
                    "  worker {:<3}  {} injections  wall {} us  busy {} us  {:.1} inj/s",
                    w.worker, w.injections, w.wall_us, w.busy_us, w.throughput()
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_summary_aggregates_records() {
        let trace = concat!(
            r#"{"seq":0,"t_us":1,"ev":"span","name":"campaign.plan","dur_us":10}"#, "\n",
            r#"{"seq":1,"t_us":2,"ev":"injection","index":0,"worker":0,"outcome":"sdc","dur_us":100}"#, "\n",
            r#"{"seq":2,"t_us":3,"ev":"injection","index":1,"worker":0,"outcome":"detected","dur_us":300}"#, "\n",
            r#"{"seq":3,"t_us":4,"ev":"worker","worker":0,"injections":2,"wall_us":500,"busy_us":400}"#, "\n",
            r#"{"seq":4,"t_us":5,"ev":"counter","name":"monitor.violations","value":3}"#, "\n",
            r#"{"seq":5,"t_us":6,"ev":"counter","name":"monitor.violations","value":2}"#, "\n",
            r#"{"seq":6,"t_us":7,"ev":"gauge","name":"monitor.queue_high_water","value":7}"#, "\n",
            r#"{"seq":7,"t_us":8,"ev":"histogram","name":"campaign.injection_us","count":2,"sum":400,"max":300}"#, "\n",
        );
        let s = TraceSummary::parse(trace).unwrap();
        assert_eq!(s.records, 8);
        assert_eq!(s.counters, vec![("monitor.violations".to_string(), 5)]);
        assert_eq!(s.gauges, vec![("monitor.queue_high_water".to_string(), 7)]);
        assert_eq!(s.injection_us.count, 2);
        assert_eq!(s.injection_us.max_us, 300);
        assert_eq!(s.workers.len(), 1);
        assert!((s.workers[0].throughput() - 4000.0).abs() < 1e-9);
        assert_eq!(s.spans.len(), 1);
        assert_eq!(s.spans[0].dur.total_us, 10);
        let rendered = s.render();
        assert!(rendered.contains("monitor.violations"));
        assert!(rendered.contains("sdc=1"));
        assert!(rendered.contains("worker 0"));
    }

    #[test]
    fn trace_summary_rejects_garbage_with_line_numbers() {
        let err = TraceSummary::parse("{\"ev\":\"x\"}\nnot json\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        let err = TraceSummary::parse("{\"seq\":1}\n").unwrap_err();
        assert!(err.contains("no `ev`"), "{err}");
    }

    #[test]
    fn render_telemetry_lists_all_metric_kinds() {
        let mut s = TelemetrySnapshot::new();
        s.push_counter("vm.instructions", 42);
        s.push_gauge("monitor.queue_high_water", 9);
        let h = bw_telemetry::Histogram::new();
        h.observe(5);
        s.push_histogram("campaign.injection_us", h.snapshot());
        let text = render_telemetry(&s);
        assert!(text.contains("vm.instructions"));
        assert!(text.contains("monitor.queue_high_water"));
        assert!(text.contains("campaign.injection_us"));
        assert_eq!(render_telemetry(&TelemetrySnapshot::new()), "(no telemetry recorded)\n");
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!(geomean(&[]).is_nan());
    }

    #[test]
    fn table4_covers_all_benchmarks() {
        let rows = table4(Size::Test);
        assert_eq!(rows.len(), 7);
        for row in &rows {
            assert!(row.branches >= row.parallel_branches);
            assert!(row.parallel_branches > 0, "{}", row.name);
            assert!(row.instructions >= row.parallel_instructions);
        }
    }

    #[test]
    fn table5_shapes_match_paper() {
        let rows = table5(Size::Test);
        assert_eq!(rows.len(), 7);
        // Paper: 49–98 % of branches are similar in every program.
        for row in &rows {
            let f = row.similar_fraction();
            assert!(f >= 0.45, "{}: similar fraction {f}", row.name);
        }
        // ocean-contiguous is partial-dominated.
        let ocean = &rows[0];
        assert!(ocean.partial * 100 >= ocean.total * 70, "{ocean:?}");
        // FMM and raytrace have the largest `none` shares.
        let fmm_none = rows[2].none as f64 / rows[2].total as f64;
        let ray_none = rows[5].none as f64 / rows[5].total as f64;
        for (i, row) in rows.iter().enumerate() {
            if i != 2 && i != 5 {
                let none_frac = row.none as f64 / row.total.max(1) as f64;
                assert!(
                    none_frac <= fmm_none.max(ray_none) + 1e-9,
                    "{} none fraction {none_frac} exceeds FMM/raytrace",
                    row.name
                );
            }
        }
    }
}
