//! Experiment harnesses regenerating the paper's tables and figures.
//!
//! Each function produces the structured rows/series behind one exhibit;
//! the `bw-bench` binaries print them, and the integration tests assert
//! their *shape* against the paper (who wins, by roughly what factor,
//! where the crossovers fall — absolute numbers come from a cost-model
//! simulator, not the authors' 32-core testbed).

use std::fmt::Write as _;

use bw_analysis::ModuleAnalysis;
use bw_fault::{CampaignConfig, FaultModel, OutcomeCounts};
use bw_splash::{Benchmark, Size};
use bw_telemetry::{parse_flat_object, write_json_object, HistogramSnapshot, TelemetrySnapshot, Value};
use bw_vm::{
    run_sim, ExecMode, MonitorMode, ProgramImage, RunOutcome, SimConfig,
};
use serde::{Deserialize, Serialize};

use crate::{Blockwatch, Error};

/// A row of Table IV: benchmark characteristics.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CharacteristicsRow {
    /// Benchmark name (paper's spelling).
    pub name: String,
    /// Source lines of the port (mini language).
    pub source_lines: usize,
    /// IR instructions in the whole module.
    pub instructions: usize,
    /// IR instructions in the parallel section.
    pub parallel_instructions: usize,
    /// Total conditional branches.
    pub branches: usize,
    /// Branches in the parallel section.
    pub parallel_branches: usize,
}

/// Regenerates Table IV (characteristics of the benchmark programs) from
/// the ports at `size`.
pub fn table4(size: Size) -> Vec<CharacteristicsRow> {
    Benchmark::ALL
        .iter()
        .map(|&bench| {
            let src = bench.source(size);
            let module = bench.module(size).expect("port compiles");
            let analysis = ModuleAnalysis::run(&module);
            let parallel_instructions = module
                .iter_funcs()
                .filter(|(fid, _)| analysis.parallel_funcs[fid.index()])
                .map(|(_, f)| f.num_insts())
                .sum();
            CharacteristicsRow {
                name: bench.name().to_string(),
                source_lines: src.lines().filter(|l| !l.trim().is_empty()).count(),
                instructions: module.num_insts(),
                parallel_instructions,
                branches: module.num_branches(),
                parallel_branches: analysis.parallel_branches().count(),
            }
        })
        .collect()
}

/// A row of Table V: similarity-category statistics.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SimilarityRow {
    /// Benchmark name.
    pub name: String,
    /// Total parallel-section branches.
    pub total: usize,
    /// `shared` count.
    pub shared: usize,
    /// `threadID` count.
    pub thread_id: usize,
    /// `partial` count.
    pub partial: usize,
    /// `none` count.
    pub none: usize,
}

impl SimilarityRow {
    /// Fraction of branches statically identified as similar.
    pub fn similar_fraction(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        (self.shared + self.thread_id + self.partial) as f64 / self.total as f64
    }
}

/// Regenerates Table V (similarity-category statistics of the branches).
pub fn table5(size: Size) -> Vec<SimilarityRow> {
    Benchmark::ALL
        .iter()
        .map(|&bench| {
            let module = bench.module(size).expect("port compiles");
            let h = ModuleAnalysis::run(&module).category_histogram();
            SimilarityRow {
                name: bench.name().to_string(),
                total: h.total(),
                shared: h.shared,
                thread_id: h.thread_id,
                partial: h.partial,
                none: h.none,
            }
        })
        .collect()
}

/// One point of the Figure 6/7 performance series.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct OverheadPoint {
    /// Thread count.
    pub nthreads: u32,
    /// Parallel-section cycles without BLOCKWATCH.
    pub baseline_cycles: u64,
    /// Parallel-section cycles with BLOCKWATCH.
    pub protected_cycles: u64,
}

impl OverheadPoint {
    /// Normalized execution time (the paper's y-axis; 1.0 = baseline).
    pub fn ratio(&self) -> f64 {
        self.protected_cycles as f64 / self.baseline_cycles.max(1) as f64
    }
}

/// Measures one benchmark's overhead at one thread count.
///
/// Instrumented runs use `SendOnly` at the machine's full width (the
/// paper's methodology: the monitor thread is disabled when all cores are
/// occupied, but the sends still happen) and the full monitor otherwise;
/// the simulated cost is identical because monitor processing is not
/// charged to application threads.
pub fn overhead_point(image: &ProgramImage, nthreads: u32) -> OverheadPoint {
    let mut baseline = SimConfig::new(nthreads);
    baseline.monitor = MonitorMode::Off;
    let base = run_sim(image, &baseline);
    assert_eq!(base.outcome, RunOutcome::Completed, "baseline must complete");

    let mut protected = SimConfig::new(nthreads);
    protected.monitor = if nthreads >= protected.machine.cores() {
        MonitorMode::SendOnly
    } else {
        MonitorMode::Enabled
    };
    let prot = run_sim(image, &protected);
    assert_eq!(prot.outcome, RunOutcome::Completed, "protected must complete");
    assert!(!prot.detected(), "no false positives in performance runs");

    OverheadPoint {
        nthreads,
        baseline_cycles: base.parallel_cycles,
        protected_cycles: prot.parallel_cycles,
    }
}

/// A benchmark's overhead across thread counts (one Figure 6/7 series).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct OverheadSeries {
    /// Benchmark name.
    pub name: String,
    /// One point per requested thread count.
    pub points: Vec<OverheadPoint>,
}

/// Regenerates the Figure 6/7 measurements: per-benchmark normalized
/// execution times at each thread count in `threads`.
pub fn overhead_series(size: Size, threads: &[u32]) -> Vec<OverheadSeries> {
    Benchmark::ALL
        .iter()
        .map(|&bench| {
            let image =
                ProgramImage::prepare_default(bench.module(size).expect("port compiles"));
            let points = threads.iter().map(|&n| overhead_point(&image, n)).collect();
            OverheadSeries { name: bench.name().to_string(), points }
        })
        .collect()
}

/// Geometric mean of the overhead ratios at one thread count across all
/// series (the paper's Figure 7 y-axis).
pub fn geomean_at(series: &[OverheadSeries], nthreads: u32) -> f64 {
    let ratios: Vec<f64> = series
        .iter()
        .filter_map(|s| s.points.iter().find(|p| p.nthreads == nthreads).map(OverheadPoint::ratio))
        .collect();
    geomean(&ratios)
}

/// Geometric mean.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

/// One bar pair of Figures 8/9: coverage with and without BLOCKWATCH.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CoverageRow {
    /// Benchmark name.
    pub name: String,
    /// Thread count of the campaign.
    pub nthreads: u32,
    /// Fault model.
    pub model: FaultModel,
    /// Outcome counts without BLOCKWATCH.
    pub original: OutcomeCounts,
    /// Outcome counts with BLOCKWATCH.
    pub protected: OutcomeCounts,
}

impl CoverageRow {
    /// `coverage_original` (the light bar).
    pub fn coverage_original(&self) -> f64 {
        self.original.coverage()
    }

    /// `coverage_BLOCKWATCH` (the full bar).
    pub fn coverage_protected(&self) -> f64 {
        self.protected.coverage()
    }
}

/// Runs the paired (with/without BLOCKWATCH) fault-injection campaigns for
/// one benchmark — one bar pair of Figure 8 (`BranchFlip`) or Figure 9
/// (`ConditionBitFlip`). The same seed drives both campaigns, so the
/// injection targets are identical.
///
/// Prepares a fresh image per call; use [`coverage_row_on`] to amortize
/// one prepared program (and its cached golden runs) across thread counts
/// and fault models.
pub fn coverage_row(
    bench: Benchmark,
    size: Size,
    model: FaultModel,
    nthreads: u32,
    injections: usize,
    seed: u64,
) -> Result<CoverageRow, Error> {
    let bw = Blockwatch::from_module(bench.module(size)?)?;
    coverage_row_on(&bw, bench.name(), model, nthreads, injections, seed, 0)
}

/// [`coverage_row`] on an already-prepared program: the 4- and 32-thread
/// campaigns of Figures 8/9 (and both fault models) reuse one image, and
/// golden runs are cached per simulation configuration on `bw`. Campaign
/// experiments run on `workers` threads (`0` = available parallelism);
/// results are identical for any worker count.
#[allow(clippy::too_many_arguments)]
pub fn coverage_row_on(
    bw: &Blockwatch,
    name: &str,
    model: FaultModel,
    nthreads: u32,
    injections: usize,
    seed: u64,
    workers: usize,
) -> Result<CoverageRow, Error> {
    let protected_cfg =
        CampaignConfig::new(injections, model, nthreads).seed(seed).workers(workers);
    let protected = bw.campaign(&protected_cfg)?;

    let mut original_cfg = protected_cfg.clone();
    original_cfg.sim.monitor = MonitorMode::Off;
    let original = bw.campaign(&original_cfg)?;

    Ok(CoverageRow {
        name: name.to_string(),
        nthreads,
        model,
        original: original.counts,
        protected: protected.counts,
    })
}

/// One point of the Section VI duplication comparison.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct DuplicationPoint {
    /// Thread count.
    pub nthreads: u32,
    /// BLOCKWATCH overhead ratio.
    pub blockwatch: f64,
    /// Software-duplication overhead ratio.
    pub duplication: f64,
}

/// Compares BLOCKWATCH and software duplication (DMR) overheads across
/// thread counts for one benchmark (Section VI).
pub fn duplication_comparison(
    bench: Benchmark,
    size: Size,
    threads: &[u32],
) -> Vec<DuplicationPoint> {
    let image = ProgramImage::prepare_default(bench.module(size).expect("port compiles"));
    threads
        .iter()
        .map(|&n| {
            let bw = overhead_point(&image, n);

            let mut base = SimConfig::new(n);
            base.monitor = MonitorMode::Off;
            let baseline = run_sim(&image, &base);

            let mut dup = base.clone();
            dup.exec = ExecMode::Duplicated;
            let duplicated = run_sim(&image, &dup);

            DuplicationPoint {
                nthreads: n,
                blockwatch: bw.ratio(),
                duplication: duplicated.parallel_cycles as f64
                    / baseline.parallel_cycles.max(1) as f64,
            }
        })
        .collect()
}

/// Runs the paper's false-positive experiment: `runs` fault-free runs per
/// benchmark, expecting zero violations. Returns per-benchmark FP counts.
pub fn false_positive_sweep(size: Size, nthreads: u32, runs: usize) -> Vec<(String, usize)> {
    Benchmark::ALL
        .iter()
        .map(|&bench| {
            let image =
                ProgramImage::prepare_default(bench.module(size).expect("port compiles"));
            let fps = bw_fault::false_positive_runs(&image, &SimConfig::new(nthreads), runs);
            (bench.name().to_string(), fps)
        })
        .collect()
}

/// Renders a [`TelemetrySnapshot`] as a human-readable summary table:
/// counters, gauges, then histogram aggregates (count / mean / max).
pub fn render_telemetry(snapshot: &TelemetrySnapshot) -> String {
    let mut out = String::new();
    let width = snapshot
        .counters()
        .iter()
        .map(|(n, _)| n.len())
        .chain(snapshot.gauges().iter().map(|(n, _)| n.len()))
        .chain(snapshot.histograms().iter().map(|(n, _)| n.len()))
        .max()
        .unwrap_or(0);
    if !snapshot.counters().is_empty() {
        out.push_str("counters:\n");
        for (name, value) in snapshot.counters() {
            let _ = writeln!(out, "  {name:<width$}  {value}");
        }
    }
    if !snapshot.gauges().is_empty() {
        out.push_str("gauges (high-water marks):\n");
        for (name, value) in snapshot.gauges() {
            let _ = writeln!(out, "  {name:<width$}  {value}");
        }
    }
    if !snapshot.histograms().is_empty() {
        out.push_str("histograms (wall-clock, nondeterministic):\n");
        for (name, h) in snapshot.histograms() {
            let _ = writeln!(
                out,
                "  {name:<width$}  count {}  mean {:.1}  p50 {:.0}  p90 {:.0}  p99 {:.0}  max {}",
                h.count,
                h.mean(),
                h.p50(),
                h.p90(),
                h.p99(),
                h.max
            );
        }
    }
    if out.is_empty() {
        out.push_str("(no telemetry recorded)\n");
    }
    out
}

/// Aggregate duration statistics (microseconds).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DurStat {
    /// Observations.
    pub count: u64,
    /// Sum of all durations.
    pub total_us: u64,
    /// Largest single duration.
    pub max_us: u64,
}

impl DurStat {
    fn observe(&mut self, us: u64) {
        self.count += 1;
        self.total_us += us;
        self.max_us = self.max_us.max(us);
    }

    /// Mean duration in microseconds.
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.total_us as f64 / self.count as f64
    }
}

/// Aggregated timings of one span name across a trace.
#[derive(Clone, Debug, Default)]
pub struct SpanStat {
    /// Span name.
    pub name: String,
    /// Duration aggregate.
    pub dur: DurStat,
}

/// One worker's statistics reconstructed from a trace's `worker` records.
#[derive(Clone, Copy, Debug, Default)]
pub struct TraceWorker {
    /// Worker index.
    pub worker: u64,
    /// Injections the worker executed.
    pub injections: u64,
    /// Worker wall-clock microseconds.
    pub wall_us: u64,
    /// Microseconds inside injection runs.
    pub busy_us: u64,
}

impl TraceWorker {
    /// Injections per second over the worker's wall time.
    pub fn throughput(&self) -> f64 {
        if self.wall_us == 0 {
            return 0.0;
        }
        self.injections as f64 * 1e6 / self.wall_us as f64
    }
}

/// Histogram aggregate reconstructed from a trace's `histogram` records.
#[derive(Clone, Debug, Default)]
pub struct TraceHistogram {
    /// Metric name.
    pub name: String,
    /// Observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Largest observed value.
    pub max: u64,
    /// Sparse power-of-two buckets as `(inclusive upper bound, count)`,
    /// merged across records. Empty for traces written before the
    /// `buckets` field existed; quantiles are unavailable then.
    pub buckets: Vec<(u64, u64)>,
}

impl TraceHistogram {
    /// The aggregate as a [`HistogramSnapshot`], for quantile estimation.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            max: self.max,
            buckets: self.buckets.clone(),
        }
    }
}

/// An aggregated view of a JSONL telemetry trace — what `bw stats` prints.
///
/// The trace is the output of a [`bw_telemetry::JsonlRecorder`]: one flat
/// JSON object per line, each with an `ev` field naming the record type.
/// Counter records accumulate, gauges keep their maximum, spans and
/// injections aggregate durations per name.
#[derive(Clone, Debug, Default)]
pub struct TraceSummary {
    /// Total records parsed.
    pub records: u64,
    /// Record counts per `ev` type, sorted by name.
    pub events: Vec<(String, u64)>,
    /// Span timings per span name, sorted by name.
    pub spans: Vec<SpanStat>,
    /// Final counter values, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Final gauge values (maxima), sorted by name.
    pub gauges: Vec<(String, u64)>,
    /// Histogram aggregates, sorted by name.
    pub histograms: Vec<TraceHistogram>,
    /// Injection counts per outcome name, sorted by name.
    pub injections: Vec<(String, u64)>,
    /// Injection duration aggregate.
    pub injection_us: DurStat,
    /// Per-worker statistics, sorted by worker index.
    pub workers: Vec<TraceWorker>,
}

fn field<'a>(fields: &'a [(String, Value)], name: &str) -> Option<&'a Value> {
    fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

fn field_u64(fields: &[(String, Value)], name: &str) -> u64 {
    field(fields, name).and_then(Value::as_u64).unwrap_or(0)
}

fn bump(list: &mut Vec<(String, u64)>, name: &str, value: u64, accumulate: bool) {
    match list.iter_mut().find(|(n, _)| n == name) {
        Some((_, v)) if accumulate => *v += value,
        Some((_, v)) => *v = (*v).max(value),
        None => list.push((name.to_string(), value)),
    }
}

impl TraceSummary {
    /// Parses a JSONL trace. Blank lines are skipped; a malformed line
    /// fails the whole parse with its line number.
    pub fn parse(text: &str) -> Result<TraceSummary, String> {
        let mut summary = TraceSummary::default();
        for (lineno, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let fields = parse_flat_object(line)
                .map_err(|e| format!("line {}: {} (offset {})", lineno + 1, e.message, e.offset))?;
            let ev = field(&fields, "ev")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("line {}: record has no `ev` field", lineno + 1))?
                .to_string();
            summary.records += 1;
            bump(&mut summary.events, &ev, 1, true);
            match ev.as_str() {
                "span" => {
                    let name = field(&fields, "name").and_then(Value::as_str).unwrap_or("?");
                    let dur = field_u64(&fields, "dur_us");
                    match summary.spans.iter_mut().find(|s| s.name == name) {
                        Some(s) => s.dur.observe(dur),
                        None => {
                            let mut s = SpanStat { name: name.to_string(), dur: DurStat::default() };
                            s.dur.observe(dur);
                            summary.spans.push(s);
                        }
                    }
                }
                "counter" | "gauge" => {
                    let name = field(&fields, "name").and_then(Value::as_str).unwrap_or("?");
                    let value = field_u64(&fields, "value");
                    if ev == "counter" {
                        bump(&mut summary.counters, name, value, true);
                    } else {
                        bump(&mut summary.gauges, name, value, false);
                    }
                }
                "histogram" => {
                    let name = field(&fields, "name").and_then(Value::as_str).unwrap_or("?");
                    let (count, sum, max) = (
                        field_u64(&fields, "count"),
                        field_u64(&fields, "sum"),
                        field_u64(&fields, "max"),
                    );
                    // Optional: pre-`buckets` traces still parse, they just
                    // can't answer quantile queries.
                    let buckets = field(&fields, "buckets")
                        .and_then(Value::as_str)
                        .map(HistogramSnapshot::decode_buckets)
                        .unwrap_or_default();
                    match summary.histograms.iter_mut().find(|h| h.name == name) {
                        Some(h) => {
                            h.count += count;
                            h.sum += sum;
                            h.max = h.max.max(max);
                            for (bound, n) in buckets {
                                match h.buckets.iter_mut().find(|(b, _)| *b == bound) {
                                    Some((_, c)) => *c += n,
                                    None => h.buckets.push((bound, n)),
                                }
                            }
                            h.buckets.sort_by_key(|&(b, _)| b);
                        }
                        None => summary.histograms.push(TraceHistogram {
                            name: name.to_string(),
                            count,
                            sum,
                            max,
                            buckets,
                        }),
                    }
                }
                "injection" => {
                    let outcome =
                        field(&fields, "outcome").and_then(Value::as_str).unwrap_or("?");
                    bump(&mut summary.injections, outcome, 1, true);
                    summary.injection_us.observe(field_u64(&fields, "dur_us"));
                }
                "worker" => summary.workers.push(TraceWorker {
                    worker: field_u64(&fields, "worker"),
                    injections: field_u64(&fields, "injections"),
                    wall_us: field_u64(&fields, "wall_us"),
                    busy_us: field_u64(&fields, "busy_us"),
                }),
                _ => {}
            }
        }
        summary.events.sort();
        summary.spans.sort_by(|a, b| a.name.cmp(&b.name));
        summary.counters.sort();
        summary.gauges.sort();
        summary.histograms.sort_by(|a, b| a.name.cmp(&b.name));
        summary.injections.sort();
        summary.workers.sort_by_key(|w| w.worker);
        Ok(summary)
    }

    /// Renders the summary as the human-readable `bw stats` report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{} records", self.records);
        if !self.events.is_empty() {
            out.push_str("events:");
            for (name, count) in &self.events {
                let _ = write!(out, "  {name}={count}");
            }
            out.push('\n');
        }
        let mut snapshot = TelemetrySnapshot::new();
        for (name, value) in &self.counters {
            snapshot.push_counter(name.as_str(), *value);
        }
        for (name, value) in &self.gauges {
            snapshot.push_gauge(name.as_str(), *value);
        }
        out.push_str(&render_telemetry(&snapshot));
        // Monitor health, surfaced from the generic tables: dropped events
        // mean the verdicts are incomplete, and the pending high-water shows
        // how deep the correlation table ran.
        let dropped =
            self.counters.iter().find(|(n, _)| n == "monitor.events_dropped").map(|&(_, v)| v);
        let pending = self
            .gauges
            .iter()
            .find(|(n, _)| n == "monitor.pending_high_water")
            .map(|&(_, v)| v);
        if dropped.is_some() || pending.is_some() {
            out.push_str("monitor health:\n");
            match dropped {
                Some(d) if d > 0 => {
                    let _ = writeln!(
                        out,
                        "  events dropped: {d}  (queue overflow; verdicts may be incomplete)"
                    );
                }
                Some(_) => out.push_str("  events dropped: 0\n"),
                None => {}
            }
            if let Some(p) = pending {
                let _ = writeln!(out, "  pending-table high water: {p} instance(s)");
            }
        }
        // Per-shard ingest health (only present when the monitor ran
        // sharded): each shard's share of the event stream, its drops and
        // its queue high-water mark — an uneven split or a hot shard shows
        // up here. Campaign traces carry these under the `golden.` prefix,
        // `bw run` traces carry them bare; match the `monitor.shard.<i>.`
        // segment wherever it sits, summing counters and maxing gauges.
        let mut shards: std::collections::BTreeMap<u64, (u64, u64, u64)> =
            std::collections::BTreeMap::new();
        for (name, value) in self.counters.iter().chain(self.gauges.iter()) {
            let Some(rest) = name.split("monitor.shard.").nth(1) else { continue };
            let mut parts = rest.splitn(2, '.');
            let Some(id) = parts.next().and_then(|s| s.parse::<u64>().ok()) else { continue };
            let row = shards.entry(id).or_default();
            match parts.next() {
                Some("events_processed") => row.0 += value,
                Some("events_dropped") => row.1 += value,
                Some("queue_high_water") => row.2 = row.2.max(*value),
                _ => {}
            }
        }
        if !shards.is_empty() {
            out.push_str("monitor shards:\n");
            for (s, (processed, dropped, high_water)) in shards {
                let _ = writeln!(
                    out,
                    "  shard {s:<3} processed {processed}  dropped {dropped}  \
                     queue high water {high_water}"
                );
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histogram aggregates:\n");
            for h in &self.histograms {
                let mean = if h.count == 0 { 0.0 } else { h.sum as f64 / h.count as f64 };
                if h.buckets.is_empty() {
                    let _ = writeln!(
                        out,
                        "  {:<28}  count {}  mean {mean:.1}  max {}",
                        h.name, h.count, h.max
                    );
                } else {
                    let snap = h.snapshot();
                    let _ = writeln!(
                        out,
                        "  {:<28}  count {}  mean {mean:.1}  p50 {:.0}  p90 {:.0}  p99 {:.0}  max {}",
                        h.name,
                        h.count,
                        snap.p50(),
                        snap.p90(),
                        snap.p99(),
                        h.max
                    );
                }
            }
        }
        if !self.spans.is_empty() {
            out.push_str("spans:\n");
            for s in &self.spans {
                let _ = writeln!(
                    out,
                    "  {:<28}  count {}  total {} us  mean {:.1} us  max {} us",
                    s.name, s.dur.count, s.dur.total_us, s.dur.mean_us(), s.dur.max_us
                );
            }
        }
        if !self.injections.is_empty() {
            out.push_str("injections:");
            for (outcome, count) in &self.injections {
                let _ = write!(out, "  {outcome}={count}");
            }
            let _ = writeln!(
                out,
                "\n  duration: mean {:.1} us, max {} us over {} runs",
                self.injection_us.mean_us(),
                self.injection_us.max_us,
                self.injection_us.count
            );
        }
        if !self.workers.is_empty() {
            out.push_str("workers:\n");
            for w in &self.workers {
                let _ = writeln!(
                    out,
                    "  worker {:<3}  {} injections  wall {} us  busy {} us  {:.1} inj/s",
                    w.worker, w.injections, w.wall_us, w.busy_us, w.throughput()
                );
            }
        }
        out
    }

    /// Renders the summary as one flat JSON object with dotted keys
    /// (`counter.<name>`, `hist.<name>.p99`, …), round-trippable by
    /// [`bw_telemetry::parse_flat_object`]. What `bw stats --format json`
    /// prints.
    pub fn to_json(&self) -> String {
        let mut fields: Vec<(String, Value)> = vec![("records".into(), Value::from(self.records))];
        for (name, count) in &self.events {
            fields.push((format!("events.{name}"), Value::from(*count)));
        }
        for (name, value) in &self.counters {
            fields.push((format!("counter.{name}"), Value::from(*value)));
        }
        for (name, value) in &self.gauges {
            fields.push((format!("gauge.{name}"), Value::from(*value)));
        }
        for h in &self.histograms {
            fields.push((format!("hist.{}.count", h.name), Value::from(h.count)));
            fields.push((format!("hist.{}.sum", h.name), Value::from(h.sum)));
            fields.push((format!("hist.{}.max", h.name), Value::from(h.max)));
            if !h.buckets.is_empty() {
                let snap = h.snapshot();
                fields.push((format!("hist.{}.p50", h.name), Value::from(snap.p50())));
                fields.push((format!("hist.{}.p90", h.name), Value::from(snap.p90())));
                fields.push((format!("hist.{}.p99", h.name), Value::from(snap.p99())));
            }
        }
        for s in &self.spans {
            fields.push((format!("span.{}.count", s.name), Value::from(s.dur.count)));
            fields.push((format!("span.{}.total_us", s.name), Value::from(s.dur.total_us)));
            fields.push((format!("span.{}.max_us", s.name), Value::from(s.dur.max_us)));
        }
        for (outcome, count) in &self.injections {
            fields.push((format!("injection.{outcome}"), Value::from(*count)));
        }
        if self.injection_us.count > 0 {
            fields.push(("injection_us.count".into(), Value::from(self.injection_us.count)));
            fields.push(("injection_us.total".into(), Value::from(self.injection_us.total_us)));
            fields.push(("injection_us.max".into(), Value::from(self.injection_us.max_us)));
        }
        for w in &self.workers {
            fields.push((format!("worker.{}.injections", w.worker), Value::from(w.injections)));
            fields.push((format!("worker.{}.wall_us", w.worker), Value::from(w.wall_us)));
            fields.push((format!("worker.{}.busy_us", w.worker), Value::from(w.busy_us)));
        }
        let refs: Vec<(&str, Value)> =
            fields.iter().map(|(k, v)| (k.as_str(), v.clone())).collect();
        let mut out = String::new();
        write_json_object(&mut out, &refs);
        out.push('\n');
        out
    }
}

/// One `sample` record of a trace: a timestamped delta snapshot emitted
/// by the background [`bw_telemetry::Sampler`].
#[derive(Clone, Debug, Default)]
pub struct SampleTick {
    /// 1-based sample index.
    pub tick: u64,
    /// Wall-clock microseconds covered by this tick.
    pub dt_us: u64,
    /// True when the sampler flagged the interval (nonzero
    /// `events_dropped` delta).
    pub warn: bool,
    /// Counter *deltas* and absolute gauge values, in record order.
    pub values: Vec<(String, u64)>,
}

impl SampleTick {
    /// The named value in this tick, if present.
    pub fn value(&self, name: &str) -> Option<u64> {
        self.values.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// A counter delta as a per-second rate over this tick's interval.
    pub fn rate(&self, name: &str) -> f64 {
        if self.dt_us == 0 {
            return 0.0;
        }
        self.value(name).unwrap_or(0) as f64 * 1e6 / self.dt_us as f64
    }
}

/// The time-series view of a JSONL trace — what `bw top` and
/// `bw stats --series` print.
///
/// Reconstructed purely from the trace's `sample` records (wall-clock
/// material the deterministic views ignore): per-tick engine throughput,
/// campaign progress with an ETA extrapolated from the cumulative rate,
/// and per-shard monitor queue depth.
#[derive(Clone, Debug, Default)]
pub struct SeriesReport {
    /// Sample ticks in trace order.
    pub ticks: Vec<SampleTick>,
}

impl SeriesReport {
    /// Parses a JSONL trace, keeping the `sample` records. Blank lines are
    /// skipped; a malformed line fails the whole parse with its number.
    pub fn parse(text: &str) -> Result<SeriesReport, String> {
        let mut report = SeriesReport::default();
        for (lineno, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let fields = parse_flat_object(line)
                .map_err(|e| format!("line {}: {} (offset {})", lineno + 1, e.message, e.offset))?;
            let ev = field(&fields, "ev")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("line {}: record has no `ev` field", lineno + 1))?;
            if ev != "sample" {
                continue;
            }
            let mut tick = SampleTick {
                tick: field_u64(&fields, "tick"),
                dt_us: field_u64(&fields, "dt_us"),
                warn: field(&fields, "warn").is_some(),
                values: Vec::new(),
            };
            for (name, value) in &fields {
                if matches!(name.as_str(), "seq" | "t_us" | "ev" | "tick" | "dt_us" | "warn") {
                    continue;
                }
                if let Some(v) = value.as_u64() {
                    tick.values.push((name.clone(), v));
                }
            }
            report.ticks.push(tick);
        }
        Ok(report)
    }

    /// Shard ids with a `live.monitor.shard.<i>.queue_depth` gauge
    /// anywhere in the series, sorted.
    pub fn shard_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = Vec::new();
        for tick in &self.ticks {
            for (name, _) in &tick.values {
                let Some(rest) = name.strip_prefix("live.monitor.shard.") else { continue };
                let Some(id) = rest.strip_suffix(".queue_depth") else { continue };
                if let Ok(id) = id.parse::<u64>() {
                    if !ids.contains(&id) {
                        ids.push(id);
                    }
                }
            }
        }
        ids.sort_unstable();
        ids
    }

    /// Renders the series as a per-tick table with a totals footer.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.ticks.is_empty() {
            out.push_str(
                "(no sample records in trace — run with --sample-interval-ms to collect them)\n",
            );
            return out;
        }
        let total_us: u64 = self.ticks.iter().map(|t| t.dt_us).sum();
        let _ = writeln!(
            out,
            "samples: {} tick(s) over {:.2} s",
            self.ticks.len(),
            total_us as f64 / 1e6
        );
        let shards = self.shard_ids();
        let has_campaign = self
            .ticks
            .iter()
            .any(|t| t.values.iter().any(|(n, _)| n.starts_with("live.campaign.")));
        let _ = write!(out, "{:>5}  {:>8}  {:>10}", "tick", "dt_ms", "events/s");
        if has_campaign {
            let _ = write!(out, "  {:>7}  {:>15}  {:>7}", "inj/s", "progress", "eta_s");
        }
        for id in &shards {
            let _ = write!(out, "  {:>5}", format!("q{id}"));
        }
        out.push_str("  warn\n");
        let (mut planned, mut completed, mut detected) = (0u64, 0u64, 0u64);
        let (mut elapsed_us, mut events_total) = (0u64, 0u64);
        let mut warned = 0u64;
        for tick in &self.ticks {
            elapsed_us += tick.dt_us;
            let events = tick.value("live.engine.events_processed").unwrap_or(0);
            events_total += events;
            let _ = write!(
                out,
                "{:>5}  {:>8.1}  {:>10.0}",
                tick.tick,
                tick.dt_us as f64 / 1e3,
                tick.rate("live.engine.events_processed")
            );
            if has_campaign {
                planned += tick.value("live.campaign.planned").unwrap_or(0);
                completed += tick.value("live.campaign.completed").unwrap_or(0);
                detected += tick.value("live.campaign.detected").unwrap_or(0);
                let progress = if planned > 0 {
                    format!("{completed}/{planned} {:.0}%", completed as f64 * 100.0 / planned as f64)
                } else {
                    "-".to_string()
                };
                // ETA extrapolates the cumulative rate so far; unknowable
                // before the first completion or once the plan is done.
                let eta = if completed > 0 && planned > completed {
                    let remaining = (planned - completed) as f64;
                    format!("{:.1}", remaining * elapsed_us as f64 / completed as f64 / 1e6)
                } else {
                    "-".to_string()
                };
                let _ = write!(
                    out,
                    "  {:>7.1}  {progress:>15}  {eta:>7}",
                    tick.rate("live.campaign.completed")
                );
            }
            for id in &shards {
                let depth = tick
                    .value(&format!("live.monitor.shard.{id}.queue_depth"))
                    .unwrap_or(0);
                let _ = write!(out, "  {depth:>5}");
            }
            if tick.warn {
                warned += 1;
                out.push_str("  !");
            }
            out.push('\n');
        }
        let _ = write!(
            out,
            "totals: {events_total} events ({:.0}/s avg)",
            if elapsed_us == 0 { 0.0 } else { events_total as f64 * 1e6 / elapsed_us as f64 }
        );
        if has_campaign {
            let _ = write!(
                out,
                "; {completed}/{planned} injections ({:.1}/s avg), {detected} detected",
                if elapsed_us == 0 { 0.0 } else { completed as f64 * 1e6 / elapsed_us as f64 }
            );
        }
        if warned > 0 {
            let _ = write!(out, "; {warned} tick(s) saw dropped events");
        }
        out.push('\n');
        out
    }
}

/// One `injection` record of a trace, as the forensics view needs it.
#[derive(Clone, Debug, Default)]
pub struct TraceInjection {
    /// Batch image index (`0` for single-image campaigns).
    pub image: u64,
    /// Injection index within its campaign.
    pub index: u64,
    /// Outcome name (`detected`, `sdc`, …).
    pub outcome: String,
    /// Static branch hit, if the fault activated.
    pub branch: Option<u64>,
    /// Similarity category of that branch (`shared` / `threadID` /
    /// `partial`), or `-` when missed or uninstrumented.
    pub category: String,
}

/// One `violation` record of a trace: the flat-JSONL encoding of a
/// [`bw_monitor::ViolationReport`].
#[derive(Clone, Debug, Default)]
pub struct TraceViolation {
    /// Batch image index (`0` for single-image campaigns).
    pub image: u64,
    /// Injection index the violation was detected under.
    pub index: u64,
    /// Offending branch.
    pub branch: u64,
    /// Call-site path hash.
    pub site: u64,
    /// Loop-iteration hash.
    pub iter: u64,
    /// Violation-kind name (`witness_mismatch`, …).
    pub kind: String,
    /// Similarity category of the check.
    pub category: String,
    /// The cross-thread pattern the category predicted.
    pub predicted: String,
    /// Threads that had reported when the check fired.
    pub reporters: u64,
    /// Monitor message count at detection.
    pub detected_seq: u64,
    /// Messages between the deviant's report and detection; `None` when the
    /// deviant had aged out of the flight-recorder ring.
    pub latency: Option<u64>,
    /// Per-thread observation table, `t<id>=w<witness-hex>:<T|F>` entries.
    pub observed: String,
    /// Comma-joined deviant thread ids.
    pub deviants: String,
    /// Comma-joined majority thread ids.
    pub majority: String,
    /// Flight-recorder window, oldest first,
    /// `t<id>:i<iter>:w<witness-hex>:<T|F>:s<seq>` entries.
    pub window: String,
}

/// Per-category coverage/detection aggregates of a forensics report.
#[derive(Clone, Debug, Default)]
struct CategoryStats {
    injected: u64,
    activated: u64,
    detected: u64,
    sdc: u64,
    latencies: Vec<u64>,
}

/// The forensics view of a JSONL trace — what `bw report` prints.
///
/// Unlike [`TraceSummary`] (throughput and metric aggregates), this view
/// reconstructs *causal* evidence: which injections were detected, by which
/// site, with which threads deviating, and how quickly. Every rendered
/// field is deterministic for a fixed campaign seed — record arrival order,
/// worker ids, timestamps and durations are deliberately ignored — so the
/// report is byte-identical across runs at any worker count.
#[derive(Clone, Debug, Default)]
pub struct ForensicsReport {
    /// Injection records, sorted by (image, index).
    pub injections: Vec<TraceInjection>,
    /// Violation records, sorted by (image, index, site, branch, iter).
    pub violations: Vec<TraceViolation>,
}

impl ForensicsReport {
    /// Parses a JSONL trace, keeping the `injection` and `violation`
    /// records. Blank lines are skipped; a malformed line fails the whole
    /// parse with its line number.
    pub fn parse(text: &str) -> Result<ForensicsReport, String> {
        let mut report = ForensicsReport::default();
        for (lineno, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let fields = parse_flat_object(line)
                .map_err(|e| format!("line {}: {} (offset {})", lineno + 1, e.message, e.offset))?;
            let ev = field(&fields, "ev")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("line {}: record has no `ev` field", lineno + 1))?;
            let text_field = |name: &str| {
                field(&fields, name).and_then(Value::as_str).unwrap_or("").to_string()
            };
            match ev {
                "injection" => report.injections.push(TraceInjection {
                    image: field_u64(&fields, "image"),
                    index: field_u64(&fields, "index"),
                    outcome: text_field("outcome"),
                    branch: field(&fields, "branch")
                        .and_then(Value::as_str)
                        .and_then(|b| b.parse().ok()),
                    category: text_field("category"),
                }),
                "violation" => report.violations.push(TraceViolation {
                    image: field_u64(&fields, "image"),
                    index: field_u64(&fields, "index"),
                    branch: field_u64(&fields, "branch"),
                    site: field_u64(&fields, "site"),
                    iter: field_u64(&fields, "iter"),
                    kind: text_field("kind"),
                    category: text_field("category"),
                    predicted: text_field("predicted"),
                    reporters: field_u64(&fields, "reporters"),
                    detected_seq: field_u64(&fields, "detected_seq"),
                    latency: field(&fields, "latency")
                        .and_then(Value::as_str)
                        .and_then(|l| l.parse().ok()),
                    observed: text_field("observed"),
                    deviants: text_field("deviants"),
                    majority: text_field("majority"),
                    window: text_field("window"),
                }),
                _ => {}
            }
        }
        report.injections.sort_by_key(|i| (i.image, i.index));
        report.violations.sort_by(|a, b| {
            (a.image, a.index, a.site, a.branch, a.iter, &a.kind)
                .cmp(&(b.image, b.index, b.site, b.branch, b.iter, &b.kind))
        });
        Ok(report)
    }

    /// Whether the trace carries any detection evidence at all.
    pub fn has_detections(&self) -> bool {
        !self.violations.is_empty()
            || self.injections.iter().any(|i| i.outcome == "detected")
    }

    /// Renders the human-readable forensics summary: outcome totals, the
    /// per-category coverage/detection matrix, top violating sites, and one
    /// deviant-thread table per violation.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let detected =
            self.injections.iter().filter(|i| i.outcome == "detected").count();
        let _ = writeln!(
            out,
            "forensics: {} injection(s), {} detected, {} violation record(s)",
            self.injections.len(),
            detected,
            self.violations.len()
        );

        let mut outcomes: Vec<(String, u64)> = Vec::new();
        for i in &self.injections {
            bump(&mut outcomes, &i.outcome, 1, true);
        }
        outcomes.sort();
        if !outcomes.is_empty() {
            out.push_str("outcomes:");
            for (name, count) in &outcomes {
                let _ = write!(out, "  {name}={count}");
            }
            out.push('\n');
        }

        // Per-category coverage/detection matrix. Categories come from the
        // injection records (so undetected injections count too); latency
        // aggregates come from the violation evidence.
        let mut matrix: std::collections::BTreeMap<String, CategoryStats> =
            std::collections::BTreeMap::new();
        for i in &self.injections {
            let s = matrix.entry(i.category.clone()).or_default();
            s.injected += 1;
            if i.outcome != "not_activated" {
                s.activated += 1;
            }
            match i.outcome.as_str() {
                "detected" => s.detected += 1,
                "sdc" => s.sdc += 1,
                _ => {}
            }
        }
        for v in &self.violations {
            if let Some(l) = v.latency {
                matrix.entry(v.category.clone()).or_default().latencies.push(l);
            }
        }
        if !matrix.is_empty() {
            out.push_str("\ncoverage by similarity category:\n");
            out.push_str(
                "  category  injected  activated  detected  sdc  coverage  latency mean/max\n",
            );
            for (category, s) in &matrix {
                let coverage = if s.activated == 0 {
                    100.0
                } else {
                    100.0 * (1.0 - s.sdc as f64 / s.activated as f64)
                };
                let latency = if s.latencies.is_empty() {
                    "-".to_string()
                } else {
                    let sum: u64 = s.latencies.iter().sum();
                    let max = s.latencies.iter().max().copied().unwrap_or(0);
                    format!("{:.1} / {max}", sum as f64 / s.latencies.len() as f64)
                };
                let _ = writeln!(
                    out,
                    "  {category:<8}  {:>8}  {:>9}  {:>8}  {:>3}  {coverage:>7.1}%  {latency}",
                    s.injected, s.activated, s.detected, s.sdc
                );
            }
        }

        // Top violating sites: which (branch, site) instances fire most.
        let mut sites: Vec<((u64, u64, String), u64)> = Vec::new();
        for v in &self.violations {
            let key = (v.branch, v.site, v.category.clone());
            match sites.iter_mut().find(|(k, _)| *k == key) {
                Some((_, n)) => *n += 1,
                None => sites.push((key, 1)),
            }
        }
        sites.sort_by(|a, b| (b.1, &a.0).cmp(&(a.1, &b.0)));
        if !sites.is_empty() {
            out.push_str("\ntop violating sites:\n");
            for ((branch, site, category), count) in sites.iter().take(10) {
                let _ = writeln!(
                    out,
                    "  br{branch} site {site:#x}  {count} violation(s)  [{category}]"
                );
            }
        }

        // Full evidence, one deviant-thread table per violation.
        if !self.violations.is_empty() {
            out.push_str("\nviolation details:\n");
        }
        for v in &self.violations {
            let _ = writeln!(
                out,
                "injection {}: br{} {} (site {:#x}, iter {:#x}, {} reporters)",
                v.index, v.branch, v.kind, v.site, v.iter, v.reporters
            );
            let _ = writeln!(out, "  category {}; predicted: {}", v.category, v.predicted);
            render_observed_table(&mut out, &v.observed, &v.deviants);
            let latency = match v.latency {
                Some(l) => format!("latency {l} message(s)"),
                None => "latency unknown (deviant aged out of the ring)".to_string(),
            };
            let _ = writeln!(out, "  detected at seq {}, {latency}", v.detected_seq);
            if !v.window.is_empty() {
                let entries = v.window.split(';').count();
                let _ = writeln!(out, "  window ({entries} entries): {}", v.window);
            }
        }
        out
    }
}

/// Renders the `t<id>=w<hex>:<T|F>` observed string as an aligned
/// per-thread table with DEVIANT/majority roles.
fn render_observed_table(out: &mut String, observed: &str, deviants: &str) {
    if observed.is_empty() {
        return;
    }
    let deviant_ids: Vec<&str> = deviants.split(',').filter(|s| !s.is_empty()).collect();
    out.push_str("  thread  witness           outcome    role\n");
    for entry in observed.split(',') {
        let Some((thread, rest)) = entry.split_once('=') else { continue };
        let thread = thread.trim_start_matches('t');
        let (witness, taken) = rest.split_once(':').unwrap_or((rest, "?"));
        let witness = witness.trim_start_matches('w');
        let outcome = match taken {
            "T" => "taken",
            "F" => "not-taken",
            _ => "?",
        };
        let role = if deviant_ids.contains(&thread) { "DEVIANT" } else { "majority" };
        let _ = writeln!(out, "  {thread:>6}  {witness:<16}  {outcome:<9}  {role}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_summary_aggregates_records() {
        let trace = concat!(
            r#"{"seq":0,"t_us":1,"ev":"span","name":"campaign.plan","dur_us":10}"#, "\n",
            r#"{"seq":1,"t_us":2,"ev":"injection","index":0,"worker":0,"outcome":"sdc","dur_us":100}"#, "\n",
            r#"{"seq":2,"t_us":3,"ev":"injection","index":1,"worker":0,"outcome":"detected","dur_us":300}"#, "\n",
            r#"{"seq":3,"t_us":4,"ev":"worker","worker":0,"injections":2,"wall_us":500,"busy_us":400}"#, "\n",
            r#"{"seq":4,"t_us":5,"ev":"counter","name":"monitor.violations","value":3}"#, "\n",
            r#"{"seq":5,"t_us":6,"ev":"counter","name":"monitor.violations","value":2}"#, "\n",
            r#"{"seq":6,"t_us":7,"ev":"gauge","name":"monitor.queue_high_water","value":7}"#, "\n",
            r#"{"seq":7,"t_us":8,"ev":"histogram","name":"campaign.injection_us","count":2,"sum":400,"max":300}"#, "\n",
        );
        let s = TraceSummary::parse(trace).unwrap();
        assert_eq!(s.records, 8);
        assert_eq!(s.counters, vec![("monitor.violations".to_string(), 5)]);
        assert_eq!(s.gauges, vec![("monitor.queue_high_water".to_string(), 7)]);
        assert_eq!(s.injection_us.count, 2);
        assert_eq!(s.injection_us.max_us, 300);
        assert_eq!(s.workers.len(), 1);
        assert!((s.workers[0].throughput() - 4000.0).abs() < 1e-9);
        assert_eq!(s.spans.len(), 1);
        assert_eq!(s.spans[0].dur.total_us, 10);
        let rendered = s.render();
        assert!(rendered.contains("monitor.violations"));
        assert!(rendered.contains("sdc=1"));
        assert!(rendered.contains("worker 0"));
    }

    #[test]
    fn trace_summary_renders_monitor_health() {
        let trace = concat!(
            r#"{"seq":0,"t_us":1,"ev":"counter","name":"monitor.events_dropped","value":4}"#, "\n",
            r#"{"seq":1,"t_us":2,"ev":"gauge","name":"monitor.pending_high_water","value":9}"#, "\n",
        );
        let rendered = TraceSummary::parse(trace).unwrap().render();
        assert!(rendered.contains("monitor health:"), "{rendered}");
        assert!(rendered.contains("events dropped: 4"), "{rendered}");
        assert!(rendered.contains("verdicts may be incomplete"), "{rendered}");
        assert!(rendered.contains("pending-table high water: 9 instance(s)"), "{rendered}");
        // Zero drops render without the warning; absent metrics render nothing.
        let trace = r#"{"seq":0,"t_us":1,"ev":"counter","name":"monitor.events_dropped","value":0}"#;
        let rendered = TraceSummary::parse(trace).unwrap().render();
        assert!(rendered.contains("events dropped: 0"), "{rendered}");
        assert!(!rendered.contains("incomplete"), "{rendered}");
        let trace = r#"{"seq":0,"t_us":1,"ev":"counter","name":"vm.instructions","value":5}"#;
        let rendered = TraceSummary::parse(trace).unwrap().render();
        assert!(!rendered.contains("monitor health"), "{rendered}");
    }

    #[test]
    fn trace_summary_renders_per_shard_health() {
        let trace = concat!(
            r#"{"seq":0,"t_us":1,"ev":"counter","name":"monitor.shard.0.events_processed","value":120}"#, "\n",
            r#"{"seq":1,"t_us":2,"ev":"counter","name":"monitor.shard.1.events_processed","value":80}"#, "\n",
            r#"{"seq":2,"t_us":3,"ev":"counter","name":"monitor.shard.1.events_dropped","value":3}"#, "\n",
            r#"{"seq":3,"t_us":4,"ev":"gauge","name":"monitor.shard.0.queue_high_water","value":17}"#, "\n",
        );
        let rendered = TraceSummary::parse(trace).unwrap().render();
        assert!(rendered.contains("monitor shards:"), "{rendered}");
        assert!(
            rendered.contains("shard 0   processed 120  dropped 0  queue high water 17"),
            "{rendered}"
        );
        assert!(
            rendered.contains("shard 1   processed 80  dropped 3  queue high water 0"),
            "{rendered}"
        );
        // Campaign traces record the golden run's telemetry under a
        // `golden.` prefix; the shard section must still pick it up.
        let trace = concat!(
            r#"{"seq":0,"t_us":1,"ev":"counter","name":"golden.monitor.shard.0.events_processed","value":300}"#, "\n",
            r#"{"seq":1,"t_us":2,"ev":"gauge","name":"golden.monitor.shard.0.queue_high_water","value":9}"#, "\n",
        );
        let rendered = TraceSummary::parse(trace).unwrap().render();
        assert!(
            rendered.contains("shard 0   processed 300  dropped 0  queue high water 9"),
            "{rendered}"
        );
        // Unsharded traces get no shard section.
        let trace = r#"{"seq":0,"t_us":1,"ev":"counter","name":"monitor.events_dropped","value":0}"#;
        let rendered = TraceSummary::parse(trace).unwrap().render();
        assert!(!rendered.contains("monitor shards"), "{rendered}");
    }

    /// A two-injection trace with one detection carrying full provenance.
    fn forensics_trace() -> &'static str {
        concat!(
            r#"{"seq":0,"t_us":1,"ev":"injection","index":0,"worker":1,"outcome":"detected","branch":"2","category":"shared","dur_us":10}"#, "\n",
            r#"{"seq":1,"t_us":2,"ev":"violation","index":0,"branch":2,"site":64,"iter":5,"kind":"witness_mismatch","category":"shared","predicted":"all threads agree on the branch input","reporters":4,"detected_seq":12,"latency":"3","observed":"t0=w2a:T,t1=w63:T,t2=w63:T,t3=w63:T","deviants":"0","majority":"1,2,3","window":"t0:i5:w2a:T:s9;t1:i5:w63:T:s10","worker":1}"#, "\n",
            r#"{"seq":2,"t_us":3,"ev":"injection","index":1,"worker":0,"outcome":"sdc","branch":"7","category":"threadID","dur_us":20}"#, "\n",
        )
    }

    #[test]
    fn forensics_report_parses_and_renders_evidence() {
        let r = ForensicsReport::parse(forensics_trace()).unwrap();
        assert!(r.has_detections());
        assert_eq!(r.injections.len(), 2);
        assert_eq!(r.violations.len(), 1);
        let v = &r.violations[0];
        assert_eq!((v.branch, v.site, v.iter), (2, 64, 5));
        assert_eq!(v.latency, Some(3));
        let text = r.render();
        assert!(text.contains("2 injection(s), 1 detected"), "{text}");
        assert!(text.contains("detected=1"), "{text}");
        // Coverage matrix: shared fully covered, threadID 0 % (1 sdc / 1 activated).
        assert!(text.contains("coverage by similarity category"), "{text}");
        assert!(text.contains("shared"), "{text}");
        assert!(text.contains("threadID"), "{text}");
        assert!(text.contains("  100.0%"), "{text}");
        assert!(text.contains("    0.0%"), "{text}");
        // Site ranking and the per-thread evidence table.
        assert!(text.contains("br2 site 0x40  1 violation(s)  [shared]"), "{text}");
        assert!(text.contains("witness_mismatch"), "{text}");
        assert!(text.contains("DEVIANT"), "{text}");
        assert_eq!(text.matches("majority").count(), 3, "{text}");
        assert!(text.contains("latency 3 message(s)"), "{text}");
        assert!(text.contains("window (2 entries)"), "{text}");
    }

    #[test]
    fn forensics_report_unknown_latency_and_missed_branch() {
        let trace = concat!(
            r#"{"seq":0,"t_us":1,"ev":"injection","index":0,"outcome":"not_activated","branch":"-","category":"-"}"#, "\n",
            r#"{"seq":1,"t_us":2,"ev":"violation","index":1,"branch":0,"site":1,"iter":0,"kind":"tid_predicate","category":"threadID","predicted":"p","reporters":2,"detected_seq":8,"latency":"?","observed":"t0=w1:T,t1=w1:F","deviants":"1","majority":"0","window":""}"#, "\n",
        );
        let r = ForensicsReport::parse(trace).unwrap();
        assert_eq!(r.injections[0].branch, None);
        assert_eq!(r.violations[0].latency, None);
        let text = r.render();
        assert!(text.contains("latency unknown"), "{text}");
        assert!(!text.contains("window ("), "{text}");
    }

    #[test]
    fn forensics_report_is_order_independent() {
        // Shuffled record order (as different --workers counts would produce)
        // must render byte-identically.
        let lines: Vec<&str> = forensics_trace().lines().collect();
        let shuffled = format!("{}\n{}\n{}\n", lines[2], lines[1], lines[0]);
        let a = ForensicsReport::parse(forensics_trace()).unwrap().render();
        let b = ForensicsReport::parse(&shuffled).unwrap().render();
        assert_eq!(a, b);
    }

    #[test]
    fn forensics_report_empty_trace_has_no_detections() {
        let r = ForensicsReport::parse("").unwrap();
        assert!(!r.has_detections());
        assert!(r.render().contains("0 injection(s)"));
    }

    #[test]
    fn trace_summary_rejects_garbage_with_line_numbers() {
        let err = TraceSummary::parse("{\"ev\":\"x\"}\nnot json\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        let err = TraceSummary::parse("{\"seq\":1}\n").unwrap_err();
        assert!(err.contains("no `ev`"), "{err}");
    }

    #[test]
    fn trace_summary_histogram_quantiles_from_buckets() {
        // Two records of the same histogram merge their buckets; the render
        // then carries p50/p90/p99 estimated from them.
        let trace = concat!(
            r#"{"seq":0,"t_us":1,"ev":"histogram","name":"campaign.injection_us","count":3,"sum":30,"max":10,"buckets":"15:3"}"#, "\n",
            r#"{"seq":1,"t_us":2,"ev":"histogram","name":"campaign.injection_us","count":1,"sum":900,"max":900,"buckets":"1023:1"}"#, "\n",
        );
        let s = TraceSummary::parse(trace).unwrap();
        assert_eq!(s.histograms.len(), 1);
        let h = &s.histograms[0];
        assert_eq!((h.count, h.sum, h.max), (4, 930, 900));
        assert_eq!(h.buckets, vec![(15, 3), (1023, 1)]);
        let snap = h.snapshot();
        assert!(snap.p50() <= 15.0, "p50 {}", snap.p50());
        assert!(snap.p99() > 100.0, "p99 {}", snap.p99());
        let rendered = s.render();
        assert!(rendered.contains("p50"), "{rendered}");
        assert!(rendered.contains("p99"), "{rendered}");
        // Pre-`buckets` traces still render, without quantiles.
        let legacy = r#"{"seq":0,"t_us":1,"ev":"histogram","name":"x","count":2,"sum":4,"max":3}"#;
        let rendered = TraceSummary::parse(legacy).unwrap().render();
        assert!(rendered.contains("count 2"), "{rendered}");
        assert!(!rendered.contains("p50"), "{rendered}");
    }

    #[test]
    fn trace_summary_flat_json_roundtrips() {
        let trace = concat!(
            r#"{"seq":0,"t_us":1,"ev":"counter","name":"monitor.violations","value":3}"#, "\n",
            r#"{"seq":1,"t_us":2,"ev":"injection","index":0,"worker":0,"outcome":"detected","dur_us":100}"#, "\n",
            r#"{"seq":2,"t_us":3,"ev":"histogram","name":"h","count":2,"sum":6,"max":5,"buckets":"7:2"}"#, "\n",
        );
        let json = TraceSummary::parse(trace).unwrap().to_json();
        let fields = parse_flat_object(json.trim()).expect("flat JSON parses back");
        let get = |name: &str| field(&fields, name).cloned();
        assert_eq!(get("records"), Some(Value::U64(3)));
        assert_eq!(get("counter.monitor.violations"), Some(Value::U64(3)));
        assert_eq!(get("injection.detected"), Some(Value::U64(1)));
        assert_eq!(get("hist.h.count"), Some(Value::U64(2)));
        assert!(get("hist.h.p99").is_some());
        assert_eq!(get("injection_us.count"), Some(Value::U64(1)));
    }

    /// A three-tick sampled campaign trace (two shards, one warned tick).
    fn series_trace() -> &'static str {
        concat!(
            r#"{"seq":0,"t_us":1,"ev":"injection","index":0,"worker":0,"outcome":"detected","dur_us":10}"#, "\n",
            r#"{"seq":1,"t_us":50000,"ev":"sample","tick":1,"dt_us":50000,"live.campaign.planned":100,"live.campaign.completed":10,"live.campaign.detected":4,"live.engine.events_processed":50000,"live.monitor.shard.0.queue_depth":3,"live.monitor.shard.1.queue_depth":1}"#, "\n",
            r#"{"seq":2,"t_us":100000,"ev":"sample","tick":2,"dt_us":50000,"live.campaign.completed":30,"live.campaign.detected":12,"live.engine.events_processed":250000,"live.monitor.shard.0.queue_depth":8,"live.monitor.shard.1.queue_depth":0,"live.monitor.events_dropped":2,"warn":"events_dropped"}"#, "\n",
            r#"{"seq":3,"t_us":150000,"ev":"sample","tick":3,"dt_us":50000,"live.campaign.completed":10,"live.campaign.detected":4,"live.engine.events_processed":250000,"live.monitor.shard.0.queue_depth":0,"live.monitor.shard.1.queue_depth":0}"#, "\n",
        )
    }

    #[test]
    fn series_report_parses_sample_records_only() {
        let r = SeriesReport::parse(series_trace()).unwrap();
        assert_eq!(r.ticks.len(), 3);
        assert_eq!(r.ticks[0].tick, 1);
        assert_eq!(r.ticks[0].value("live.campaign.planned"), Some(100));
        assert!(!r.ticks[0].warn);
        assert!(r.ticks[1].warn);
        // 250000 events over 50 ms = 5M events/s.
        assert!((r.ticks[1].rate("live.engine.events_processed") - 5e6).abs() < 1.0);
        assert_eq!(r.shard_ids(), vec![0, 1]);
    }

    #[test]
    fn series_report_renders_progress_eta_and_queues() {
        let r = SeriesReport::parse(series_trace()).unwrap();
        let text = r.render();
        assert!(text.contains("samples: 3 tick(s)"), "{text}");
        // Tick 1: 10/100 done in 50 ms → 90 remaining at 200/s → 0.5 s ETA.
        assert!(text.contains("10/100 10%"), "{text}");
        assert!(text.contains("0.5"), "{text}");
        // Tick 2 carries the drop warning and shard 0's depth of 8.
        assert!(text.contains('!'), "{text}");
        assert!(text.contains("8"), "{text}");
        assert!(text.contains("50/100 50%"), "{text}");
        assert!(text.contains("1 tick(s) saw dropped events"), "{text}");
        assert!(text.contains("20 detected"), "{text}");
        // A sampler-less trace renders the hint, not an empty table.
        let empty = SeriesReport::parse(r#"{"seq":0,"t_us":1,"ev":"counter","name":"x","value":1}"#)
            .unwrap();
        assert!(empty.render().contains("no sample records"), "{}", empty.render());
    }

    #[test]
    fn series_report_without_campaign_omits_progress_columns() {
        let trace = r#"{"seq":0,"t_us":1,"ev":"sample","tick":1,"dt_us":1000,"live.engine.events_processed":500}"#;
        let text = SeriesReport::parse(trace).unwrap().render();
        assert!(text.contains("events/s"), "{text}");
        assert!(!text.contains("progress"), "{text}");
        assert!(!text.contains("eta"), "{text}");
    }

    #[test]
    fn render_telemetry_lists_all_metric_kinds() {
        let mut s = TelemetrySnapshot::new();
        s.push_counter("vm.instructions", 42);
        s.push_gauge("monitor.queue_high_water", 9);
        let h = bw_telemetry::Histogram::new();
        h.observe(5);
        s.push_histogram("campaign.injection_us", h.snapshot());
        let text = render_telemetry(&s);
        assert!(text.contains("vm.instructions"));
        assert!(text.contains("monitor.queue_high_water"));
        assert!(text.contains("campaign.injection_us"));
        assert_eq!(render_telemetry(&TelemetrySnapshot::new()), "(no telemetry recorded)\n");
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!(geomean(&[]).is_nan());
    }

    #[test]
    fn table4_covers_all_benchmarks() {
        let rows = table4(Size::Test);
        assert_eq!(rows.len(), 7);
        for row in &rows {
            assert!(row.branches >= row.parallel_branches);
            assert!(row.parallel_branches > 0, "{}", row.name);
            assert!(row.instructions >= row.parallel_instructions);
        }
    }

    #[test]
    fn table5_shapes_match_paper() {
        let rows = table5(Size::Test);
        assert_eq!(rows.len(), 7);
        // Paper: 49–98 % of branches are similar in every program.
        for row in &rows {
            let f = row.similar_fraction();
            assert!(f >= 0.45, "{}: similar fraction {f}", row.name);
        }
        // ocean-contiguous is partial-dominated.
        let ocean = &rows[0];
        assert!(ocean.partial * 100 >= ocean.total * 70, "{ocean:?}");
        // FMM and raytrace have the largest `none` shares.
        let fmm_none = rows[2].none as f64 / rows[2].total as f64;
        let ray_none = rows[5].none as f64 / rows[5].total as f64;
        for (i, row) in rows.iter().enumerate() {
            if i != 2 && i != 5 {
                let none_frac = row.none as f64 / row.total.max(1) as f64;
                assert!(
                    none_frac <= fmm_none.max(ray_none) + 1e-9,
                    "{} none fraction {none_frac} exceeds FMM/raytrace",
                    row.name
                );
            }
        }
    }
}
