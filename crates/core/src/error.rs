//! The umbrella error type shared by the whole pipeline.

use bw_fault::CampaignError;
use bw_ir::frontend::FrontendError;
use bw_ir::VerifyError;

/// Everything that can go wrong between source text and campaign results.
///
/// [`crate::Blockwatch::compile`], [`crate::Blockwatch::from_module`] and
/// [`crate::Blockwatch::campaign`] all return this type, so a full
/// compile-and-inject pipeline propagates through one `?` chain.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// Compiling mini-language source failed (syntax or semantics).
    Frontend(FrontendError),
    /// A hand-built module failed SSA verification.
    Verify(VerifyError),
    /// A fault-injection campaign could not run.
    Campaign(CampaignError),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Frontend(e) => write!(f, "front-end error: {e}"),
            Error::Verify(e) => write!(f, "IR verification error: {e}"),
            Error::Campaign(e) => write!(f, "campaign error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Frontend(e) => Some(e),
            Error::Verify(e) => Some(e),
            Error::Campaign(e) => Some(e),
        }
    }
}

impl From<FrontendError> for Error {
    fn from(e: FrontendError) -> Self {
        Error::Frontend(e)
    }
}

impl From<VerifyError> for Error {
    fn from(e: VerifyError) -> Self {
        Error::Verify(e)
    }
}

impl From<CampaignError> for Error {
    fn from(e: CampaignError) -> Self {
        Error::Campaign(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn wraps_campaign_errors_with_source() {
        let err = Error::from(CampaignError::NoThreads);
        assert!(err.to_string().contains("zero threads"));
        assert!(err.source().is_some());
    }
}
