//! The `bw bench-suite` perf-trajectory harness.
//!
//! One seeded, self-timed pass over the throughput-critical paths —
//! monitor ingest (events/sec over a shard sweep), fault campaigns
//! (injections/sec on the FFT port), pipeline preparation (per-stage
//! wall clock from [`ProgramImage::try_prepare_timed`](bw_vm::ProgramImage))
//! and similarity-analysis throughput (values/sec, sequential and
//! SCC-parallel) — emitted as one flat JSON object CI can archive and diff across
//! commits. Criterion (in `bw-bench`) answers "is this change faster?";
//! this suite answers "did throughput fall off a cliff since the committed
//! baseline?" cheaply enough to run on every push.
//!
//! Numbers are wall-clock and machine-dependent: the baseline check
//! ([`BenchSuiteResult::check_against`]) therefore only fails on
//! order-of-magnitude regressions (default 20×), never on noise.

use std::fmt::Write as _;
use std::time::Instant;

use bw_analysis::CheckKind;
use bw_monitor::{BranchEvent, CheckTable, MonitorBuilder, MonitorTopology};
use bw_splash::{Benchmark, Size};
use bw_telemetry::{
    parse_flat_object, write_json_object, JsonlRecorder, Recorder, TimeDomain, Value,
};

use crate::{Blockwatch, Error, FaultModel};

/// Schema tag stamped into every result object.
pub const BENCH_SUITE_SCHEMA: &str = "bw-bench-suite/v1";

/// Tuning knobs of one suite pass.
#[derive(Clone, Debug)]
pub struct BenchSuiteConfig {
    /// Campaign target-selection seed.
    pub seed: u64,
    /// Campaign size (injections).
    pub injections: usize,
    /// SPMD thread count for ingest and campaign.
    pub nthreads: u32,
    /// Monitor shard counts to sweep.
    pub shards: Vec<usize>,
    /// Timed repetitions per measurement (best-of is reported, so a
    /// descheduled rep doesn't poison the number).
    pub reps: usize,
}

impl Default for BenchSuiteConfig {
    fn default() -> Self {
        BenchSuiteConfig {
            seed: 42,
            injections: 60,
            nthreads: 4,
            shards: vec![1, 2, 4],
            reps: 3,
        }
    }
}

/// The flat key→value result of one suite pass — serialized by
/// [`to_json`](BenchSuiteResult::to_json), read back (e.g. as a committed
/// baseline) by [`parse`](BenchSuiteResult::parse).
#[derive(Clone, Debug, Default)]
pub struct BenchSuiteResult {
    /// Flat fields in emission order, `schema` first.
    pub fields: Vec<(String, Value)>,
}

impl BenchSuiteResult {
    fn push(&mut self, key: impl Into<String>, value: impl Into<Value>) {
        self.fields.push((key.into(), value.into()));
    }

    /// The named field, if present.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Serializes as one flat JSON object (dotted keys, scalar values),
    /// round-trippable by [`bw_telemetry::parse_flat_object`].
    pub fn to_json(&self) -> String {
        let refs: Vec<(&str, Value)> =
            self.fields.iter().map(|(k, v)| (k.as_str(), v.clone())).collect();
        let mut out = String::new();
        write_json_object(&mut out, &refs);
        out.push('\n');
        out
    }

    /// Parses a result previously written by [`to_json`]. Rejects objects
    /// without the [`BENCH_SUITE_SCHEMA`] tag — a wrong or future schema
    /// must fail loudly, not compare garbage.
    pub fn parse(text: &str) -> Result<BenchSuiteResult, String> {
        let fields = parse_flat_object(text.trim()).map_err(|e| e.to_string())?;
        let result = BenchSuiteResult { fields };
        match result.get("schema").and_then(Value::as_str) {
            Some(BENCH_SUITE_SCHEMA) => Ok(result),
            Some(other) => Err(format!(
                "unsupported bench-suite schema {other:?} (expected {BENCH_SUITE_SCHEMA:?})"
            )),
            None => Err("not a bench-suite result: no `schema` field".to_string()),
        }
    }

    /// Compares this (current) result against a committed `baseline`.
    ///
    /// Every `*_per_sec` key of the baseline must exist here (a vanished
    /// measurement is a harness regression) and must be no worse than
    /// `tolerance`× slower. Wall-clock `*_us` keys are informational only —
    /// CI machines differ too much for them to gate.
    ///
    /// # Errors
    ///
    /// Returns the list of human-readable failures.
    pub fn check_against(
        &self,
        baseline: &BenchSuiteResult,
        tolerance: f64,
    ) -> Result<(), Vec<String>> {
        let mut failures = Vec::new();
        for (key, base) in &baseline.fields {
            if !key.ends_with("_per_sec") {
                continue;
            }
            let Some(base) = base.as_f64() else { continue };
            match self.get(key).and_then(Value::as_f64) {
                None => failures.push(format!("baseline key `{key}` missing from current run")),
                Some(cur) if base > 0.0 && cur * tolerance < base => failures.push(format!(
                    "`{key}` regressed {:.1}x beyond the {tolerance:.0}x tolerance: \
                     {cur:.0}/s now vs {base:.0}/s baseline",
                    base / cur.max(f64::MIN_POSITIVE),
                )),
                Some(_) => {}
            }
        }
        if failures.is_empty() {
            Ok(())
        } else {
            Err(failures)
        }
    }

    /// Renders a human-readable table of the result.
    pub fn render(&self) -> String {
        let width = self.fields.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
        let mut out = String::new();
        for (key, value) in &self.fields {
            let rendered = match value {
                Value::F64(x) => format!("{x:.1}"),
                Value::U64(n) => n.to_string(),
                Value::I64(n) => n.to_string(),
                Value::Bool(b) => b.to_string(),
                Value::Null => "null".to_string(),
                Value::Str(s) => s.clone(),
            };
            let _ = writeln!(out, "  {key:<width$}  {rendered}");
        }
        out
    }
}

/// Times one clean uniform event stream through the monitor at the given
/// topology and returns (events processed, elapsed microseconds). The same
/// workload as the `monitor_ingest` Criterion bench, sized down for CI.
fn ingest_once(checks: &CheckTable, nthreads: usize, topology: MonitorTopology) -> (u64, u64) {
    const SITES: u64 = 64;
    const ITERS: u64 = 50;
    let started = Instant::now();
    let (senders, handle) =
        MonitorBuilder::new(checks.clone(), nthreads).topology(topology).spawn();
    std::thread::scope(|scope| {
        for (t, mut sender) in senders.into_iter().enumerate() {
            scope.spawn(move || {
                for iter in 0..ITERS {
                    for site in 0..SITES {
                        sender.send(BranchEvent {
                            branch: 0,
                            thread: t as u32,
                            site,
                            iter,
                            witness: 7,
                            taken: true,
                        });
                    }
                }
            });
        }
    });
    let verdict = handle.join();
    (verdict.events_processed, started.elapsed().as_micros() as u64)
}

/// Runs the full suite with `config`, returning the flat result.
///
/// # Errors
///
/// Returns [`Error`] when a benchmark port fails to compile or a campaign
/// cannot run — both indicate a broken build, not a slow one.
pub fn run_bench_suite(config: &BenchSuiteConfig) -> Result<BenchSuiteResult, Error> {
    let reps = config.reps.max(1);
    let mut result = BenchSuiteResult::default();
    result.push("schema", BENCH_SUITE_SCHEMA);
    result.push("seed", config.seed);
    result.push("nthreads", config.nthreads as u64);
    result.push("reps", reps as u64);

    // Monitor ingest: events/sec over the shard sweep (flat topology is
    // `Sharded { 1 }`-equivalent, so sharded-only keeps the key space flat).
    let checks = CheckTable::from_kinds(vec![Some(CheckKind::SharedUniform)]);
    for &shards in &config.shards {
        let mut best = 0.0f64;
        for _ in 0..reps {
            let (events, us) =
                ingest_once(&checks, config.nthreads as usize, MonitorTopology::Sharded { shards });
            if us > 0 {
                best = best.max(events as f64 * 1e6 / us as f64);
            }
        }
        result.push(
            format!("monitor_ingest.t{}.s{shards}.events_per_sec", config.nthreads),
            best,
        );
    }

    // Campaign throughput: seeded branch-flip injections/sec on the FFT
    // port. The golden run is timed separately so the per-injection rate
    // isn't diluted by one-time profiling.
    let bw = Blockwatch::from_module(Benchmark::Fft.module(Size::Test)?)?;
    let golden_started = Instant::now();
    bw.golden(&bw_vm::SimConfig::new(config.nthreads));
    result.push("campaign.fft.golden_us", golden_started.elapsed().as_micros() as u64);
    let mut best = 0.0f64;
    let mut detected = 0u64;
    for _ in 0..reps {
        let started = Instant::now();
        let campaign = bw
            .campaign_runner(config.injections, FaultModel::BranchFlip, config.nthreads)
            .seed(config.seed)
            .run()?;
        let us = started.elapsed().as_micros() as u64;
        detected = campaign.counts.detected as u64;
        if us > 0 {
            best = best.max(config.injections as f64 * 1e6 / us as f64);
        }
    }
    result.push("campaign.fft.injections", config.injections as u64);
    result.push("campaign.fft.detected", detected);
    result.push("campaign.fft.injections_per_sec", best);

    // Pipeline preparation: per-stage wall clock of the slowest port
    // (ocean-contiguous) plus FFT, fresh-compiled so parse is included.
    for bench in [Benchmark::Fft, Benchmark::OceanContig] {
        let mut parse_best = u64::MAX;
        let mut timings = None;
        for _ in 0..reps {
            let started = Instant::now();
            let bw = Blockwatch::compile(&bench.source(Size::Test))?;
            let parse_us = started.elapsed().as_micros() as u64;
            if parse_us < parse_best {
                parse_best = parse_us;
                timings = Some(bw.prepare_timings());
            }
        }
        let timings = timings.expect("reps >= 1");
        // Key slug: the paper spelling has spaces and capitals
        // ("continuous ocean"), dotted keys want neither.
        let name = bench.name().to_lowercase().replace(' ', "-");
        result.push(format!("pipeline.{name}.compile_us"), parse_best);
        result.push(format!("pipeline.{name}.verify_us"), timings.verify_us);
        result.push(format!("pipeline.{name}.analyze_us"), timings.analyze_us);
        result.push(format!("pipeline.{name}.instrument_us"), timings.instrument_us);
        result.push(format!("pipeline.{name}.link_us"), timings.link_us);
    }

    // Similarity-analysis throughput over a seeded corpus of generated
    // modules (single modules are too small for a stable rate): the
    // sequential oracle plus the SCC-parallel path at a small worker
    // sweep. Parallel keys are per-worker-count so the baseline gate
    // catches a regression in either scheduling overhead or the analysis
    // itself.
    let gen_cfg =
        bw_gen::GenConfig { max_stmts: 120, max_depth: 4, ..bw_gen::GenConfig::default() };
    let corpus: Vec<_> =
        (0..24).map(|i| bw_gen::generate_module(config.seed + i, &gen_cfg)).collect();
    let nvalues: u64 = corpus
        .iter()
        .flat_map(|m| m.funcs.iter())
        .map(|f| f.num_values() as u64)
        .sum();
    result.push("analysis.values", nvalues);
    let time_sweep = |run: &dyn Fn(&bw_ir::Module) -> bw_analysis::ModuleAnalysis| {
        let mut best = 0.0f64;
        for _ in 0..reps {
            let started = Instant::now();
            for module in &corpus {
                std::hint::black_box(run(module));
            }
            let us = started.elapsed().as_micros() as u64;
            if us > 0 {
                best = best.max(nvalues as f64 * 1e6 / us as f64);
            }
        }
        best
    };
    result.push("analysis_values_per_sec", time_sweep(&bw_analysis::ModuleAnalysis::run));
    for workers in [1usize, 4] {
        let rate = time_sweep(&|m| bw_analysis::ModuleAnalysis::run_parallel(m, workers));
        result.push(format!("analysis.w{workers}.values_per_sec"), rate);
    }

    // Timeline encode: `tspan` records/sec through a JsonlRecorder into a
    // discarding writer — the `--trace-spans` hot path every engine span,
    // shard flush and campaign stage goes through.
    const TL_EVENTS: u64 = 20_000;
    let mut best = 0.0f64;
    for _ in 0..reps {
        let rec = JsonlRecorder::new(Box::new(std::io::sink()));
        let started = Instant::now();
        for i in 0..TL_EVENTS {
            bw_telemetry::record_span(
                &rec,
                TimeDomain::Cycles,
                "t0",
                "barrier_phase",
                "phase 0",
                i,
                17,
                &[("steps", Value::U64(i)), ("branches", Value::U64(i / 8))],
            );
        }
        rec.flush();
        let us = started.elapsed().as_micros() as u64;
        if us > 0 {
            best = best.max(TL_EVENTS as f64 * 1e6 / us as f64);
        }
    }
    result.push("timeline.events", TL_EVENTS);
    result.push("timeline_events_per_sec", best);

    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fast config for tests: one rep, tiny campaign, two shard points.
    fn quick() -> BenchSuiteConfig {
        BenchSuiteConfig { seed: 7, injections: 6, nthreads: 2, shards: vec![1, 2], reps: 1 }
    }

    #[test]
    fn suite_emits_schema_and_roundtrips() {
        let result = run_bench_suite(&quick()).unwrap();
        assert_eq!(result.get("schema").and_then(Value::as_str), Some(BENCH_SUITE_SCHEMA));
        assert!(result.get("monitor_ingest.t2.s1.events_per_sec").is_some());
        assert!(result.get("monitor_ingest.t2.s2.events_per_sec").is_some());
        assert!(result.get("campaign.fft.injections_per_sec").is_some());
        assert!(result.get("pipeline.fft.analyze_us").is_some());
        assert!(result.get("pipeline.continuous-ocean.link_us").is_some());
        assert!(result.get("analysis_values_per_sec").is_some());
        assert!(result.get("analysis.w1.values_per_sec").is_some());
        assert!(result.get("analysis.w4.values_per_sec").is_some());
        assert!(result.get("timeline_events_per_sec").is_some());
        let parsed = BenchSuiteResult::parse(&result.to_json()).unwrap();
        assert_eq!(parsed.fields.len(), result.fields.len());
        assert!(!result.render().is_empty());
    }

    #[test]
    fn parse_rejects_wrong_or_missing_schema() {
        assert!(BenchSuiteResult::parse(r#"{"schema":"bw-bench-suite/v9"}"#).is_err());
        assert!(BenchSuiteResult::parse(r#"{"x":1}"#).is_err());
        assert!(BenchSuiteResult::parse("not json").is_err());
    }

    #[test]
    fn baseline_check_fails_only_on_cliffs() {
        let mk = |rate: f64| {
            let mut r = BenchSuiteResult::default();
            r.push("schema", BENCH_SUITE_SCHEMA);
            r.push("monitor_ingest.t4.s2.events_per_sec", rate);
            r.push("campaign.fft.golden_us", 100u64);
            r
        };
        let baseline = mk(1_000_000.0);
        // Half the speed: noise, passes. 100x slower: fails.
        assert!(mk(500_000.0).check_against(&baseline, 20.0).is_ok());
        let failures = mk(10_000.0).check_against(&baseline, 20.0).unwrap_err();
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("regressed"), "{}", failures[0]);
        // A vanished measurement is a failure; extra current keys are not.
        let empty = BenchSuiteResult {
            fields: vec![("schema".into(), Value::from(BENCH_SUITE_SCHEMA))],
        };
        assert!(empty.check_against(&baseline, 20.0).is_err());
        assert!(baseline.check_against(&empty, 20.0).is_ok());
    }
}
