//! The end-to-end BLOCKWATCH pipeline: compile → analyze → instrument →
//! execute (with the monitor) — the paper's two-step implementation
//! (Section III) behind one facade.

use bw_analysis::{AnalysisConfig, CategoryHistogram, CheckPlan, ModuleAnalysis};
use bw_fault::{run_campaign, CampaignConfig, CampaignResult};
use bw_ir::frontend::FrontendError;
use bw_ir::Module;
use bw_vm::{
    run_real, run_sim, ProgramImage, RealConfig, RealResult, RunResult, SimConfig,
};
use std::sync::Arc;

/// A compiled, analyzed and instrumented SPMD program.
///
/// # Examples
///
/// ```
/// use blockwatch::Blockwatch;
///
/// let bw = Blockwatch::compile(r#"
///     shared int n = 8;
///     @spmd func slave() {
///         var t: int = threadid();
///         if (t == 0) { output(n); }
///     }
/// "#)?;
/// let result = bw.run(4);
/// assert!(!result.detected());
/// # Ok::<(), bw_ir::frontend::FrontendError>(())
/// ```
#[derive(Debug)]
pub struct Blockwatch {
    image: Arc<ProgramImage>,
}

impl Blockwatch {
    /// Compiles mini-language source and prepares it with the default
    /// (paper) analysis configuration.
    ///
    /// # Errors
    ///
    /// Returns the front-end error on syntax or semantic problems.
    pub fn compile(source: &str) -> Result<Self, FrontendError> {
        Self::compile_with(source, AnalysisConfig::default())
    }

    /// Compiles with an explicit analysis configuration.
    ///
    /// # Errors
    ///
    /// Returns the front-end error on syntax or semantic problems.
    pub fn compile_with(source: &str, config: AnalysisConfig) -> Result<Self, FrontendError> {
        let module = bw_ir::frontend::compile(source)?;
        Ok(Self::from_module_with(module, config))
    }

    /// Wraps an already-built (verified) module with the default config.
    pub fn from_module(module: Module) -> Self {
        Self::from_module_with(module, AnalysisConfig::default())
    }

    /// Wraps an already-built (verified) module.
    pub fn from_module_with(module: Module, config: AnalysisConfig) -> Self {
        Blockwatch { image: Arc::new(ProgramImage::prepare(module, config)) }
    }

    /// The prepared program image.
    pub fn image(&self) -> &ProgramImage {
        &self.image
    }

    /// The static analysis results.
    pub fn analysis(&self) -> &ModuleAnalysis {
        &self.image.analysis
    }

    /// The instrumentation plan.
    pub fn plan(&self) -> &CheckPlan {
        &self.image.plan
    }

    /// Per-category branch counts of the parallel section (a Table V row).
    pub fn histogram(&self) -> CategoryHistogram {
        self.image.analysis.category_histogram()
    }

    /// Runs on the deterministic simulated machine with default settings.
    pub fn run(&self, nthreads: u32) -> RunResult {
        run_sim(&self.image, &SimConfig::new(nthreads))
    }

    /// Runs on the deterministic simulated machine with full control.
    pub fn run_with(&self, config: &SimConfig) -> RunResult {
        run_sim(&self.image, config)
    }

    /// Runs on real OS threads with the asynchronous monitor thread.
    pub fn run_real(&self, nthreads: u32) -> RealResult {
        run_real(&self.image, &RealConfig::new(nthreads))
    }

    /// Runs a fault-injection campaign.
    pub fn campaign(&self, config: &CampaignConfig) -> CampaignResult {
        run_campaign(&self.image, config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bw_vm::RunOutcome;

    #[test]
    fn pipeline_compiles_and_runs() {
        let bw = Blockwatch::compile(
            r#"
            shared int n = 4;
            @spmd func slave() {
                for (var i: int = 0; i < n; i = i + 1) { output(i); }
            }
            "#,
        )
        .unwrap();
        assert_eq!(bw.histogram().shared, 1);
        assert_eq!(bw.plan().num_instrumented(), 1);
        let result = bw.run(2);
        assert_eq!(result.outcome, RunOutcome::Completed);
        assert_eq!(result.outputs.len(), 8);
    }

    #[test]
    fn pipeline_rejects_bad_source() {
        assert!(Blockwatch::compile("@spmd func f() { nope; }").is_err());
    }
}
