//! The end-to-end BLOCKWATCH pipeline: compile → analyze → instrument →
//! execute (with the monitor) — the paper's two-step implementation
//! (Section III) behind one facade.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use bw_analysis::{AnalysisConfig, CategoryHistogram, CheckPlan, ModuleAnalysis};
use bw_fault::{
    run_campaign_with_golden_recorded, CampaignConfig, CampaignError, CampaignProgress,
    CampaignResult, FaultModel, ProgressFn,
};
use bw_ir::Module;
use bw_telemetry::{Histogram, Recorder, TelemetrySnapshot, NULL_RECORDER};
use bw_vm::{
    engine, run_real, run_sim, EngineKind, ExecConfig, MonitorMode, PrepareTimings, ProgramImage,
    RealConfig, RealResult, RunResult, SimConfig,
};

use crate::error::Error;

/// A compiled, analyzed and instrumented SPMD program.
///
/// # Examples
///
/// ```
/// use blockwatch::Blockwatch;
///
/// let bw = Blockwatch::compile(r#"
///     shared int n = 8;
///     @spmd func slave() {
///         var t: int = threadid();
///         if (t == 0) { output(n); }
///     }
/// "#)?;
/// let result = bw.run(4);
/// assert!(!result.detected());
/// # Ok::<(), blockwatch::Error>(())
/// ```
#[derive(Debug)]
pub struct Blockwatch {
    image: Arc<ProgramImage>,
    /// Golden (fault-free) runs per (engine, configuration) pair, so
    /// repeated campaigns on one image — different fault models, worker
    /// counts or seeds — profile the program only once per configuration.
    golden_cache: Mutex<HashMap<(EngineKind, ExecConfig), Arc<RunResult>>>,
    /// Wall-clock time of the front-end (parse + lower) stage; zero when
    /// the program was built from an existing module.
    parse_us: u64,
    /// Wall-clock times of the preparation stages.
    prepare: PrepareTimings,
}

impl Blockwatch {
    /// Compiles mini-language source and prepares it with the default
    /// (paper) analysis configuration.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Frontend`] on syntax or semantic problems.
    pub fn compile(source: &str) -> Result<Self, Error> {
        Self::compile_with(source, AnalysisConfig::default())
    }

    /// Compiles with an explicit analysis configuration.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Frontend`] on syntax or semantic problems.
    pub fn compile_with(source: &str, config: AnalysisConfig) -> Result<Self, Error> {
        let started = Instant::now();
        let module = bw_ir::frontend::compile(source)?;
        let parse_us = started.elapsed().as_micros() as u64;
        Self::build(module, config, parse_us)
    }

    /// Wraps an already-built module with the default config.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Verify`] when the module fails SSA verification.
    pub fn from_module(module: Module) -> Result<Self, Error> {
        Self::from_module_with(module, AnalysisConfig::default())
    }

    /// Wraps an already-built module.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Verify`] when the module fails SSA verification.
    pub fn from_module_with(module: Module, config: AnalysisConfig) -> Result<Self, Error> {
        Self::build(module, config, 0)
    }

    fn build(module: Module, config: AnalysisConfig, parse_us: u64) -> Result<Self, Error> {
        let (image, prepare) = ProgramImage::try_prepare_timed(module, config)?;
        Ok(Blockwatch {
            image: Arc::new(image),
            golden_cache: Mutex::new(HashMap::new()),
            parse_us,
            prepare,
        })
    }

    /// The prepared program image.
    pub fn image(&self) -> &ProgramImage {
        &self.image
    }

    /// Wall-clock times of the preparation stages (verify, analyze,
    /// instrument, link).
    pub fn prepare_timings(&self) -> PrepareTimings {
        self.prepare
    }

    /// The pipeline's own telemetry: deterministic counters describing the
    /// instrumented program plus one single-observation histogram per
    /// pipeline stage (parse / verify / analyze / instrument / link, in
    /// wall-clock microseconds). Merge a run's
    /// [`RunResult::telemetry`](bw_vm::RunResult) into this to get a full
    /// compile-to-execution picture.
    pub fn telemetry(&self) -> TelemetrySnapshot {
        let mut s = TelemetrySnapshot::new();
        s.push_counter("pipeline.branches", self.image.analysis.branches.len() as u64);
        s.push_counter(
            "pipeline.instrumented_checks",
            self.image.plan.num_instrumented() as u64,
        );
        for (name, us) in [
            ("pipeline.parse_us", self.parse_us),
            ("pipeline.verify_us", self.prepare.verify_us),
            ("pipeline.analyze_us", self.prepare.analyze_us),
            ("pipeline.instrument_us", self.prepare.instrument_us),
            ("pipeline.link_us", self.prepare.link_us),
        ] {
            let h = Histogram::new();
            h.observe(us);
            s.push_histogram(name, h.snapshot());
        }
        s
    }

    /// The static analysis results.
    pub fn analysis(&self) -> &ModuleAnalysis {
        &self.image.analysis
    }

    /// The instrumentation plan.
    pub fn plan(&self) -> &CheckPlan {
        &self.image.plan
    }

    /// Per-category branch counts of the parallel section (a Table V row).
    pub fn histogram(&self) -> CategoryHistogram {
        self.image.analysis.category_histogram()
    }

    /// Runs on the deterministic simulated machine with default settings.
    pub fn run(&self, nthreads: u32) -> RunResult {
        run_sim(&self.image, &SimConfig::new(nthreads))
    }

    /// Runs on the deterministic simulated machine with full control.
    pub fn run_with(&self, config: &SimConfig) -> RunResult {
        self.run_on(EngineKind::Sim, config)
    }

    /// Runs on the selected [engine](bw_vm::Engine) with full control.
    pub fn run_on(&self, kind: EngineKind, config: &ExecConfig) -> RunResult {
        engine(kind).run(&self.image, config)
    }

    /// Runs on real OS threads with the asynchronous monitor thread.
    pub fn run_real(&self, nthreads: u32) -> RealResult {
        run_real(&self.image, &RealConfig::new(nthreads))
    }

    /// The golden (fault-free) run under `config` on the simulated engine,
    /// cached per configuration: campaigns that share a simulation
    /// configuration also share one profiling run.
    pub fn golden(&self, config: &SimConfig) -> Arc<RunResult> {
        self.golden_on(EngineKind::Sim, config)
    }

    /// The golden (fault-free) run under `config` on the selected engine,
    /// cached per (engine, configuration) pair.
    ///
    /// Note that [`EngineKind::Real`] is not deterministic: caching its
    /// golden run pins one observed schedule for all later comparisons.
    pub fn golden_on(&self, kind: EngineKind, config: &ExecConfig) -> Arc<RunResult> {
        let mut cache = self.golden_cache.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(
            cache
                .entry((kind, config.clone()))
                .or_insert_with(|| Arc::new(engine(kind).run(&self.image, config))),
        )
    }

    /// Runs a fault-injection campaign.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Campaign`] when the campaign cannot run — e.g. the
    /// golden run does not complete, or zero threads are configured.
    pub fn campaign(&self, config: &CampaignConfig) -> Result<CampaignResult, Error> {
        self.campaign_with(config, None)
    }

    /// [`Blockwatch::campaign`] with a streaming progress callback.
    pub fn campaign_with(
        &self,
        config: &CampaignConfig,
        progress: Option<&ProgressFn<'_>>,
    ) -> Result<CampaignResult, Error> {
        self.campaign_recorded(config, progress, &NULL_RECORDER)
    }

    /// [`Blockwatch::campaign_with`] plus a structured-event
    /// [`Recorder`] receiving the campaign's stage spans and per-injection
    /// trace (see [`bw_fault::run_campaign_recorded`]).
    pub fn campaign_recorded(
        &self,
        config: &CampaignConfig,
        progress: Option<&ProgressFn<'_>>,
        recorder: &dyn Recorder,
    ) -> Result<CampaignResult, Error> {
        if config.sim.nthreads == 0 {
            return Err(Error::Campaign(CampaignError::NoThreads));
        }
        let golden = self.golden_on(config.engine, &config.sim);
        run_campaign_with_golden_recorded(&self.image, config, &golden, progress, recorder)
            .map_err(Error::Campaign)
    }

    /// Starts a builder-style campaign on this program.
    ///
    /// # Examples
    ///
    /// ```
    /// use blockwatch::{Blockwatch, FaultModel};
    ///
    /// let bw = Blockwatch::compile(r#"
    ///     shared int n = 8;
    ///     @spmd func slave() {
    ///         for (var i: int = 0; i < n; i = i + 1) { output(i); }
    ///     }
    /// "#)?;
    /// let result = bw
    ///     .campaign_runner(50, FaultModel::BranchFlip, 4)
    ///     .seed(42)
    ///     .workers(2)
    ///     .run()?;
    /// assert_eq!(result.records.len(), 50);
    /// # Ok::<(), blockwatch::Error>(())
    /// ```
    pub fn campaign_runner(
        &self,
        injections: usize,
        model: FaultModel,
        nthreads: u32,
    ) -> CampaignRunner<'_> {
        CampaignRunner {
            bw: self,
            config: CampaignConfig::new(injections, model, nthreads),
            progress: None,
            recorder: None,
        }
    }
}

/// A builder for campaigns on one [`Blockwatch`] program: configure, attach
/// an optional progress callback, and [`run`](CampaignRunner::run). The
/// golden run is cached on the `Blockwatch`, so successive runners with the
/// same simulation configuration profile the program only once.
pub struct CampaignRunner<'a> {
    bw: &'a Blockwatch,
    config: CampaignConfig,
    progress: Option<Box<dyn Fn(CampaignProgress) + Sync + 'a>>,
    recorder: Option<&'a dyn Recorder>,
}

impl<'a> CampaignRunner<'a> {
    /// Sets the target-selection seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config = self.config.seed(seed);
        self
    }

    /// Sets the worker-thread count (`0` = available parallelism).
    pub fn workers(mut self, workers: usize) -> Self {
        self.config = self.config.workers(workers);
        self
    }

    /// Selects the execution engine for both the golden and the faulty
    /// runs (default: [`EngineKind::Sim`]).
    pub fn engine(mut self, kind: EngineKind) -> Self {
        self.config = self.config.engine(kind);
        self
    }

    /// Sets the monitor mode of both the golden and the faulty runs
    /// (`MonitorMode::Off` gives the paper's "original program" baseline).
    pub fn monitor(mut self, monitor: MonitorMode) -> Self {
        self.config.sim.monitor = monitor;
        self
    }

    /// Shards the monitor ingest of both the golden and the faulty runs
    /// across `shards` workers (`None` = one monitor). Verdicts are
    /// shard-independent, so this is purely a throughput knob.
    pub fn monitor_shards(mut self, shards: Option<usize>) -> Self {
        self.config.sim.monitor_shards = shards;
        self
    }

    /// Replaces the simulation configuration wholesale.
    pub fn sim(mut self, sim: SimConfig) -> Self {
        self.config = self.config.sim(sim);
        self
    }

    /// Stops the campaign once `n` SDCs have been observed.
    pub fn abort_after_sdc(mut self, n: usize) -> Self {
        self.config = self.config.abort_after_sdc(n);
        self
    }

    /// Stops the campaign at the first monitor detection.
    pub fn abort_on_detection(mut self, yes: bool) -> Self {
        self.config = self.config.abort_on_detection(yes);
        self
    }

    /// Streams per-injection progress to `callback` (called from worker
    /// threads, in completion order).
    pub fn on_progress(mut self, callback: impl Fn(CampaignProgress) + Sync + 'a) -> Self {
        self.progress = Some(Box::new(callback));
        self
    }

    /// Traces the campaign's stage spans, injections and worker statistics
    /// to `recorder` (e.g. a [`bw_telemetry::JsonlRecorder`]).
    pub fn recorder(mut self, recorder: &'a dyn Recorder) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// The campaign configuration built so far.
    pub fn config(&self) -> &CampaignConfig {
        &self.config
    }

    /// Runs the campaign.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Campaign`] when the campaign cannot run.
    pub fn run(self) -> Result<CampaignResult, Error> {
        self.bw.campaign_recorded(
            &self.config,
            self.progress.as_deref(),
            self.recorder.unwrap_or(&NULL_RECORDER),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bw_vm::RunOutcome;

    #[test]
    fn pipeline_compiles_and_runs() {
        let bw = Blockwatch::compile(
            r#"
            shared int n = 4;
            @spmd func slave() {
                for (var i: int = 0; i < n; i = i + 1) { output(i); }
            }
            "#,
        )
        .unwrap();
        assert_eq!(bw.histogram().shared, 1);
        assert_eq!(bw.plan().num_instrumented(), 1);
        let result = bw.run(2);
        assert_eq!(result.outcome, RunOutcome::Completed);
        assert_eq!(result.outputs.len(), 8);
    }

    #[test]
    fn pipeline_rejects_bad_source() {
        assert!(Blockwatch::compile("@spmd func f() { nope; }").is_err());
    }

    #[test]
    fn golden_cache_is_shared_between_campaigns() {
        let bw = Blockwatch::compile(
            r#"
            shared int n = 4;
            @spmd func slave() {
                for (var i: int = 0; i < n; i = i + 1) { output(i); }
            }
            "#,
        )
        .unwrap();
        let sim = SimConfig::new(2);
        let first = bw.golden(&sim);
        let second = bw.golden(&sim);
        assert!(Arc::ptr_eq(&first, &second), "same config must hit the cache");
        // A different configuration gets its own entry.
        let other = bw.golden(&SimConfig::new(3));
        assert!(!Arc::ptr_eq(&first, &other));
    }

    #[test]
    fn zero_thread_campaign_is_an_error_not_a_panic() {
        let bw = Blockwatch::compile(
            r#"
            shared int n = 4;
            @spmd func slave() { output(n); }
            "#,
        )
        .unwrap();
        let config = CampaignConfig::new(5, FaultModel::BranchFlip, 0);
        assert!(matches!(
            bw.campaign(&config),
            Err(Error::Campaign(CampaignError::NoThreads))
        ));
    }

    #[test]
    fn runner_streams_progress() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let bw = Blockwatch::compile(
            r#"
            shared int n = 4;
            @spmd func slave() {
                for (var i: int = 0; i < n; i = i + 1) { output(i); }
            }
            "#,
        )
        .unwrap();
        let seen = AtomicUsize::new(0);
        let result = bw
            .campaign_runner(10, FaultModel::BranchFlip, 2)
            .workers(2)
            .on_progress(|p| {
                assert_eq!(p.total, 10);
                seen.fetch_add(1, Ordering::Relaxed);
            })
            .run()
            .unwrap();
        assert_eq!(result.records.len(), 10);
        assert_eq!(seen.load(Ordering::Relaxed), 10);
    }
}
