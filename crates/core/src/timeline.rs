//! Causal execution timelines: parsing, rendering and analyzing the
//! `tspan` records the engines, monitor shards and campaign stages emit
//! under `--trace-spans` (see `bw_telemetry::trace`).
//!
//! Three consumers share one parsed [`TimelineReport`]:
//!
//! * [`TimelineReport::render`] — a terminal per-lane view: one row per
//!   `(time domain, track)`, spans drawn as category glyphs over a
//!   normalized time axis.
//! * [`TimelineReport::to_chrome_json`] — Chrome Trace Event Format
//!   (the `{"traceEvents": [...]}` JSON object array form), loadable in
//!   Perfetto or `chrome://tracing`. Each time domain becomes its own
//!   process (`pid`), each track its own thread (`tid`); spans are `X`
//!   duration events, violations are `i` instants, and the deviant
//!   thread's branch event connects to the monitor verdict that flagged
//!   it with an `s`/`f` flow arrow.
//! * [`PhaseProfile`] — the similarity view (after Liu et al.,
//!   PAPERS.md): per-barrier-phase durations and step/branch counts are
//!   grouped across threads and each thread's distance from the phase
//!   median is computed; stragglers and deviants stand out exactly the
//!   way deviant branch outcomes do in the monitor.
//!
//! Everything here is a pure function of the trace text: nothing
//! executes programs, so the module works identically with the
//! `telemetry` feature on or off (an untraced build just has no `tspan`
//! records to parse).

use bw_telemetry::{parse_flat_object, write_json_object, write_json_str, Value};

/// The shape of one timeline record (the `kind` field of a `tspan`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TimelineKind {
    /// An interval `[ts, ts + dur)`.
    Span,
    /// A point in time.
    Instant,
    /// The source end of a causal arrow (paired by `flow`).
    FlowStart,
    /// The target end of a causal arrow (paired by `flow`).
    FlowEnd,
}

impl TimelineKind {
    fn parse(tag: &str) -> Option<TimelineKind> {
        match tag {
            "span" => Some(TimelineKind::Span),
            "instant" => Some(TimelineKind::Instant),
            "flow_start" => Some(TimelineKind::FlowStart),
            "flow_end" => Some(TimelineKind::FlowEnd),
            _ => None,
        }
    }
}

/// One parsed `tspan` record.
#[derive(Clone, Debug)]
pub struct TimelineEvent {
    /// Span / instant / flow end-point (see [`TimelineKind`]).
    pub kind: TimelineKind,
    /// Time domain tag: `"cyc"` (simulated cycles) or `"us"` (wall).
    pub dom: String,
    /// Lane: `t<tid>`, `shard<i>`, `w<wid>`, `main`, `monitor`.
    pub track: String,
    /// Category: `barrier_phase`, `lock_wait`, `flush_batch`, `stage`, …
    pub cat: String,
    /// Display label.
    pub name: String,
    /// Start timestamp in the record's own domain.
    pub ts: u64,
    /// Duration (zero for instants and flow end-points).
    pub dur: u64,
    /// Causal-arrow id pairing a `FlowStart` with its `FlowEnd`.
    pub flow: Option<u64>,
    /// Every remaining field: per-phase `steps`/`branches` counts,
    /// campaign scope tags (`inj`, `wid`), verdict details (`site`, …).
    pub args: Vec<(String, Value)>,
}

impl TimelineEvent {
    /// The named extra field as a `u64`, if present.
    pub fn arg_u64(&self, name: &str) -> Option<u64> {
        self.args.iter().find(|(k, _)| k == name).and_then(|(_, v)| v.as_u64())
    }
}

/// Envelope and schema fields that are *not* forwarded into
/// [`TimelineEvent::args`].
const CORE_FIELDS: [&str; 10] =
    ["ev", "seq", "t_us", "kind", "dom", "track", "cat", "name", "ts", "dur"];

/// A parsed timeline: every `tspan` record of a JSONL trace, in file
/// order. Non-`tspan` records (samples, counters, injections, …) are
/// skipped, so the same trace file feeds `bw stats`, `bw report` and
/// `bw timeline` at once.
#[derive(Clone, Debug, Default)]
pub struct TimelineReport {
    /// All parsed records, in trace order.
    pub events: Vec<TimelineEvent>,
}

impl TimelineReport {
    /// Parses a JSONL trace, keeping the `tspan` records. Blank lines
    /// are skipped; a malformed line fails the parse with its number.
    pub fn parse(text: &str) -> Result<TimelineReport, String> {
        let mut report = TimelineReport::default();
        for (lineno, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let fields = parse_flat_object(line)
                .map_err(|e| format!("line {}: {} (offset {})", lineno + 1, e.message, e.offset))?;
            let get = |name: &str| fields.iter().find(|(k, _)| k == name).map(|(_, v)| v);
            if get("ev").and_then(Value::as_str) != Some("tspan") {
                continue;
            }
            let kind = get("kind")
                .and_then(Value::as_str)
                .and_then(TimelineKind::parse)
                .ok_or_else(|| format!("line {}: tspan record with bad `kind`", lineno + 1))?;
            let text_field = |name: &str| {
                get(name).and_then(Value::as_str).unwrap_or("?").to_string()
            };
            let u64_field = |name: &str| get(name).and_then(Value::as_u64).unwrap_or(0);
            report.events.push(TimelineEvent {
                kind,
                dom: text_field("dom"),
                track: text_field("track"),
                cat: text_field("cat"),
                name: text_field("name"),
                ts: u64_field("ts"),
                dur: u64_field("dur"),
                flow: get("flow").and_then(Value::as_u64),
                args: fields
                    .iter()
                    .filter(|(k, _)| !CORE_FIELDS.contains(&k.as_str()) && k != "flow")
                    .cloned()
                    .collect(),
            });
        }
        Ok(report)
    }

    /// The time domains present, `"cyc"` before `"us"`.
    pub fn domains(&self) -> Vec<&str> {
        let mut doms: Vec<&str> = self.events.iter().map(|e| e.dom.as_str()).collect();
        doms.sort_unstable();
        doms.dedup();
        doms
    }

    /// The tracks of one domain, in lane order: SPMD threads first
    /// (numerically), then workers, shards, and the named lanes.
    fn tracks(&self, dom: &str) -> Vec<String> {
        let mut tracks: Vec<String> = self
            .events
            .iter()
            .filter(|e| e.dom == dom)
            .map(|e| e.track.clone())
            .collect();
        tracks.sort_by_key(|t| track_order(t));
        tracks.dedup();
        tracks
    }

    /// Renders the terminal lane view: one row per `(domain, track)`,
    /// spans drawn as category glyphs over a normalized time axis.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.events.is_empty() {
            out.push_str("(no tspan records in trace — run with --trace-spans to collect them)\n");
            return out;
        }
        const WIDTH: usize = 64;
        for dom in self.domains() {
            let events: Vec<&TimelineEvent> =
                self.events.iter().filter(|e| e.dom == dom).collect();
            let lo = events.iter().map(|e| e.ts).min().unwrap_or(0);
            let hi = events.iter().map(|e| e.ts + e.dur).max().unwrap_or(lo + 1).max(lo + 1);
            let unit = if dom == "cyc" { "cycles" } else { "us" };
            out.push_str(&format!(
                "timeline [{dom}] {} spans over {}..{} {unit}\n",
                events.len(),
                lo,
                hi
            ));
            let col = |ts: u64| -> usize {
                (((ts - lo) as u128 * WIDTH as u128) / (hi - lo) as u128).min(WIDTH as u128 - 1)
                    as usize
            };
            for track in self.tracks(dom) {
                let mut lane = vec![' '; WIDTH];
                // Work spans first, overlays second, points last — so a
                // lock hold inside a phase stays visible.
                let mut draw = |pass: usize| {
                    for e in events.iter().filter(|e| e.track == track) {
                        let glyph = match (e.kind, e.cat.as_str()) {
                            (TimelineKind::Span, "barrier_phase") if pass == 0 => '=',
                            (TimelineKind::Span, "barrier_phase") => continue,
                            (TimelineKind::Span, _) if pass == 0 => continue,
                            (TimelineKind::Span, "barrier_wait" | "queue_wait") => '.',
                            (TimelineKind::Span, "lock_wait") => 'w',
                            (TimelineKind::Span, "lock_hold") => 'L',
                            (TimelineKind::Span, "flush_batch") => 'F',
                            (TimelineKind::Span, "injection") => '#',
                            (TimelineKind::Span, "stage") => 'S',
                            (TimelineKind::Span, _) => '-',
                            (_, _) if pass == 2 => '!',
                            (_, _) => continue,
                        };
                        if pass == 2 || matches!(e.kind, TimelineKind::Span) {
                            let (a, b) = (col(e.ts), col(e.ts + e.dur));
                            for cell in lane.iter_mut().take(b + 1).skip(a) {
                                *cell = glyph;
                            }
                        }
                    }
                };
                draw(0);
                draw(1);
                draw(2);
                let n = events.iter().filter(|e| e.track == track).count();
                let busy: u64 = events
                    .iter()
                    .filter(|e| {
                        e.track == track
                            && e.kind == TimelineKind::Span
                            && e.cat != "barrier_wait"
                            && e.cat != "queue_wait"
                            && e.cat != "lock_wait"
                    })
                    .map(|e| e.dur)
                    .sum();
                let pct = 100.0 * busy as f64 / (hi - lo) as f64;
                out.push_str(&format!(
                    "  {:<8} |{}| {n:>4} ev, busy {pct:>5.1}%\n",
                    track,
                    lane.iter().collect::<String>()
                ));
            }
            out.push('\n');
        }
        out.push_str(
            "legend: = phase  . wait  w lock-wait  L lock-hold  F flush  # injection  S stage  ! event\n",
        );
        out
    }

    /// Exports the timeline as Chrome Trace Event Format JSON
    /// (`{"traceEvents": [...]}`), loadable in Perfetto or
    /// `chrome://tracing`. Each time domain is a process, each track a
    /// thread; flow arrows connect a deviant thread's branch event to
    /// the monitor verdict that flagged it.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        let mut push = |fields: &[(&str, Value)], args: &[(&str, Value)]| {
            // Hand-spliced because trace events nest an `args` object
            // inside the record, and the flat-writer does one level.
            let mut record = String::new();
            write_json_object(&mut record, fields);
            if !args.is_empty() {
                let mut nested = String::new();
                write_json_object(&mut nested, args);
                record.truncate(record.len() - 1);
                record.push_str(",\"args\":");
                record.push_str(&nested);
                record.push('}');
            }
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&record);
        };
        for (pid0, dom) in self.domains().iter().enumerate() {
            let pid = pid0 as u64 + 1;
            let process = if *dom == "cyc" { "sim (cycles)" } else { "wall (us)" };
            push(
                &[
                    ("name", Value::from("process_name")),
                    ("ph", Value::from("M")),
                    ("pid", Value::U64(pid)),
                    ("tid", Value::U64(0)),
                ],
                &[("name", Value::from(process))],
            );
            let tracks = self.tracks(dom);
            for (tid0, track) in tracks.iter().enumerate() {
                let tid = tid0 as u64 + 1;
                push(
                    &[
                        ("name", Value::from("thread_name")),
                        ("ph", Value::from("M")),
                        ("pid", Value::U64(pid)),
                        ("tid", Value::U64(tid)),
                    ],
                    &[("name", Value::from(track.as_str()))],
                );
            }
            for e in self.events.iter().filter(|e| &e.dom == dom) {
                let tid = tracks.iter().position(|t| t == &e.track).map_or(0, |i| i as u64 + 1);
                let args: Vec<(&str, Value)> =
                    e.args.iter().map(|(k, v)| (k.as_str(), v.clone())).collect();
                let base = |ph: &str| {
                    vec![
                        ("name", Value::from(e.name.as_str())),
                        ("cat", Value::from(e.cat.as_str())),
                        ("ph", Value::from(ph)),
                        ("ts", Value::U64(e.ts)),
                        ("pid", Value::U64(pid)),
                        ("tid", Value::U64(tid)),
                    ]
                };
                match e.kind {
                    TimelineKind::Span => {
                        let mut fields = base("X");
                        fields.insert(4, ("dur", Value::U64(e.dur)));
                        push(&fields, &args);
                    }
                    TimelineKind::Instant => {
                        let mut fields = base("i");
                        fields.push(("s", Value::from("t")));
                        push(&fields, &args);
                    }
                    TimelineKind::FlowStart => {
                        let mut fields = base("s");
                        fields.push(("id", Value::U64(e.flow.unwrap_or(0))));
                        push(&fields, &args);
                    }
                    TimelineKind::FlowEnd => {
                        let mut fields = base("f");
                        fields.push(("bp", Value::from("e")));
                        fields.push(("id", Value::U64(e.flow.unwrap_or(0))));
                        push(&fields, &args);
                    }
                }
            }
        }
        out.push_str("]}");
        out
    }

    /// Builds the cross-thread phase-similarity profile (see
    /// [`PhaseProfile`]).
    pub fn phase_profile(&self) -> PhaseProfile {
        PhaseProfile::from_events(&self.events)
    }
}

/// Lane sort key: SPMD threads (`t<tid>`) first in numeric order, then
/// campaign workers, monitor shards, and finally the named lanes.
fn track_order(track: &str) -> (u8, u64, String) {
    let numeric = |prefix: &str| track.strip_prefix(prefix).and_then(|s| s.parse::<u64>().ok());
    if let Some(n) = numeric("t") {
        return (0, n, String::new());
    }
    if let Some(n) = numeric("w") {
        return (1, n, String::new());
    }
    if let Some(n) = numeric("shard") {
        return (2, n, String::new());
    }
    (3, 0, track.to_string())
}

/// One thread's contribution to one barrier phase.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PhaseThread {
    /// SPMD thread id (from the `t<tid>` track).
    pub tid: u32,
    /// Phase duration in the profile's time domain.
    pub dur: u64,
    /// Instructions retired inside the phase.
    pub steps: u64,
    /// Branch events emitted inside the phase.
    pub branches: u64,
    /// Largest relative distance from the phase median across the three
    /// metrics (0.0 = at the median).
    pub distance: f64,
    /// Whether this thread is flagged as a straggler/deviant.
    pub deviant: bool,
}

/// One barrier phase's cross-thread statistics.
#[derive(Clone, Debug)]
pub struct PhaseStat {
    /// Phase index (0 = entry to first barrier).
    pub phase: u64,
    /// Per-thread rows, sorted by thread id.
    pub threads: Vec<PhaseThread>,
    /// Median duration across threads.
    pub median_dur: u64,
    /// Median step count across threads.
    pub median_steps: u64,
    /// Median branch-event count across threads.
    pub median_branches: u64,
}

impl PhaseStat {
    /// Whether any thread in this phase is flagged.
    pub fn has_deviant(&self) -> bool {
        self.threads.iter().any(|t| t.deviant)
    }
}

/// Threads that deviate by more than this fraction of the phase median
/// (on duration, steps or branch events) are flagged.
pub const DEVIANCE_THRESHOLD: f64 = 0.5;

/// Absolute differences at or below this floor never flag, whatever the
/// relative deviation — phases a handful of cycles long are all noise.
const DEVIANCE_FLOOR: u64 = 8;

/// The cross-thread similarity profile of an execution's barrier phases
/// (the Liu et al. idea from PAPERS.md applied to our own traces): SPMD
/// threads should spend similar time and work in each barrier-delimited
/// phase, so a thread far from the per-phase median is a straggler or a
/// deviant — the temporal analogue of the monitor's branch-outcome
/// majority vote.
///
/// Built from `barrier_phase` spans on `t<tid>` lanes. Spans carrying an
/// `inj` scope tag (faulty campaign runs) are excluded, so on a campaign
/// trace the profile describes the golden run. Phases with fewer than
/// three reporting threads are never flagged — "majority" needs one.
#[derive(Clone, Debug, Default)]
pub struct PhaseProfile {
    /// Time domain the phases were measured in (`"cyc"` or `"us"`).
    pub dom: String,
    /// Per-phase statistics, sorted by phase index.
    pub phases: Vec<PhaseStat>,
}

impl PhaseProfile {
    fn from_events(events: &[TimelineEvent]) -> PhaseProfile {
        // Prefer the deterministic domain when both are present.
        let phase_events: Vec<&TimelineEvent> = events
            .iter()
            .filter(|e| {
                e.kind == TimelineKind::Span
                    && e.cat == "barrier_phase"
                    && e.arg_u64("inj").is_none()
                    && e.track.starts_with('t')
            })
            .collect();
        let dom = if phase_events.iter().any(|e| e.dom == "cyc") { "cyc" } else { "us" };
        let mut profile = PhaseProfile { dom: dom.to_string(), phases: Vec::new() };
        let mut grouped: std::collections::BTreeMap<u64, Vec<(u32, u64, u64, u64)>> =
            std::collections::BTreeMap::new();
        for e in phase_events.iter().filter(|e| e.dom == dom) {
            let Some(tid) = e.track[1..].parse::<u32>().ok() else { continue };
            let Some(phase) = e.name.strip_prefix("phase ").and_then(|s| s.parse().ok()) else {
                continue;
            };
            grouped.entry(phase).or_default().push((
                tid,
                e.dur,
                e.arg_u64("steps").unwrap_or(0),
                e.arg_u64("branches").unwrap_or(0),
            ));
        }
        for (phase, mut rows) in grouped {
            rows.sort_unstable_by_key(|&(tid, ..)| tid);
            let median = |pick: fn(&(u32, u64, u64, u64)) -> u64| -> u64 {
                let mut vals: Vec<u64> = rows.iter().map(pick).collect();
                vals.sort_unstable();
                vals[vals.len() / 2]
            };
            let (med_dur, med_steps, med_branches) =
                (median(|r| r.1), median(|r| r.2), median(|r| r.3));
            let enough = rows.len() >= 3;
            let threads = rows
                .iter()
                .map(|&(tid, dur, steps, branches)| {
                    let distance = deviation(dur, med_dur)
                        .max(deviation(steps, med_steps))
                        .max(deviation(branches, med_branches));
                    PhaseThread {
                        tid,
                        dur,
                        steps,
                        branches,
                        distance,
                        deviant: enough && distance > DEVIANCE_THRESHOLD,
                    }
                })
                .collect();
            profile.phases.push(PhaseStat {
                phase,
                threads,
                median_dur: med_dur,
                median_steps: med_steps,
                median_branches: med_branches,
            });
        }
        profile
    }

    /// Thread ids flagged in at least one phase, ascending.
    pub fn deviant_threads(&self) -> Vec<u32> {
        let mut tids: Vec<u32> = self
            .phases
            .iter()
            .flat_map(|p| p.threads.iter().filter(|t| t.deviant).map(|t| t.tid))
            .collect();
        tids.sort_unstable();
        tids.dedup();
        tids
    }

    /// Renders the per-phase similarity table. Phases where every thread
    /// sits inside the deviance threshold collapse to one line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.phases.is_empty() {
            out.push_str(
                "(no barrier_phase spans in trace — run with --trace-spans to collect them)\n",
            );
            return out;
        }
        let unit = if self.dom == "cyc" { "cycles" } else { "us" };
        out.push_str(&format!(
            "phase profile [{}]: {} phase(s), deviance threshold {:.0}% of median\n",
            self.dom,
            self.phases.len(),
            100.0 * DEVIANCE_THRESHOLD
        ));
        for p in &self.phases {
            if !p.has_deviant() {
                out.push_str(&format!(
                    "  phase {:<3} {} threads similar (median dur {} {unit}, {} steps, {} branch events)\n",
                    p.phase,
                    p.threads.len(),
                    p.median_dur,
                    p.median_steps,
                    p.median_branches
                ));
                continue;
            }
            out.push_str(&format!(
                "  phase {:<3} median dur {} {unit}, {} steps, {} branch events\n",
                p.phase, p.median_dur, p.median_steps, p.median_branches
            ));
            for t in &p.threads {
                out.push_str(&format!(
                    "    t{:<3} dur {:>10}  steps {:>8}  branches {:>6}  distance {:>5.2}{}\n",
                    t.tid,
                    t.dur,
                    t.steps,
                    t.branches,
                    t.distance,
                    if t.deviant { "  << DEVIANT" } else { "" }
                ));
            }
        }
        match self.deviant_threads().as_slice() {
            [] => out.push_str("all threads similar in every phase\n"),
            tids => {
                let list: Vec<String> = tids.iter().map(|t| format!("t{t}")).collect();
                out.push_str(&format!("deviant thread(s): {}\n", list.join(", ")));
            }
        }
        out
    }
}

/// Relative distance of `v` from `med`, with the absolute noise floor
/// applied (see [`DEVIANCE_FLOOR`]).
fn deviation(v: u64, med: u64) -> f64 {
    let diff = v.abs_diff(med);
    if diff <= DEVIANCE_FLOOR {
        return 0.0;
    }
    diff as f64 / med.max(1) as f64
}

/// Escape helper re-exported for the CLI's `--chrome` writer tests.
#[doc(hidden)]
pub fn _json_str(s: &str) -> String {
    let mut out = String::new();
    write_json_str(&mut out, s);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A hand-written trace: two sim threads over two phases, thread 1
    /// straggling hard in phase 0; one shard lane; a verdict flow pair.
    fn fixture() -> String {
        [
            r#"{"seq":0,"t_us":1,"ev":"tspan","kind":"span","dom":"cyc","track":"t0","cat":"barrier_phase","name":"phase 0","ts":0,"dur":100,"steps":50,"branches":5}"#,
            r#"{"seq":1,"t_us":2,"ev":"tspan","kind":"span","dom":"cyc","track":"t1","cat":"barrier_phase","name":"phase 0","ts":0,"dur":900,"steps":420,"branches":41}"#,
            r#"{"seq":2,"t_us":3,"ev":"tspan","kind":"span","dom":"cyc","track":"t2","cat":"barrier_phase","name":"phase 0","ts":0,"dur":104,"steps":51,"branches":5}"#,
            r#"{"seq":3,"t_us":4,"ev":"tspan","kind":"span","dom":"cyc","track":"t0","cat":"barrier_wait","name":"barrier (phase 0)","ts":100,"dur":800}"#,
            r#"{"seq":4,"t_us":5,"ev":"tspan","kind":"span","dom":"cyc","track":"t0","cat":"barrier_phase","name":"phase 1","ts":900,"dur":60,"steps":30,"branches":3}"#,
            r#"{"seq":5,"t_us":6,"ev":"tspan","kind":"span","dom":"cyc","track":"t1","cat":"barrier_phase","name":"phase 1","ts":900,"dur":62,"steps":30,"branches":3}"#,
            r#"{"seq":6,"t_us":7,"ev":"tspan","kind":"span","dom":"cyc","track":"t2","cat":"barrier_phase","name":"phase 1","ts":900,"dur":58,"steps":29,"branches":3}"#,
            r#"{"seq":7,"t_us":8,"ev":"tspan","kind":"flow_start","dom":"cyc","track":"t1","cat":"branch_event","name":"site 9","ts":700,"flow":0,"site":9}"#,
            r#"{"seq":8,"t_us":9,"ev":"tspan","kind":"flow_end","dom":"cyc","track":"monitor","cat":"verdict","name":"site 9","ts":700,"flow":0,"site":9}"#,
            r#"{"seq":9,"t_us":10,"ev":"tspan","kind":"instant","dom":"cyc","track":"monitor","cat":"violation","name":"site 9","ts":700,"site":9}"#,
            r#"{"seq":10,"t_us":11,"ev":"tspan","kind":"span","dom":"us","track":"shard0","cat":"flush_batch","name":"drain","ts":5,"dur":3,"events":17}"#,
            r#"{"seq":11,"t_us":12,"ev":"sample","tick":1}"#,
        ]
        .join("\n")
    }

    #[test]
    fn parses_only_tspan_records() {
        let report = TimelineReport::parse(&fixture()).unwrap();
        assert_eq!(report.events.len(), 11, "sample record skipped");
        assert_eq!(report.domains(), vec!["cyc", "us"]);
        let first = &report.events[0];
        assert_eq!(first.kind, TimelineKind::Span);
        assert_eq!(first.track, "t0");
        assert_eq!(first.dur, 100);
        assert_eq!(first.arg_u64("steps"), Some(50));
        assert!(first.args.iter().all(|(k, _)| k != "seq" && k != "ts"));
        let flow = &report.events[7];
        assert_eq!(flow.kind, TimelineKind::FlowStart);
        assert_eq!(flow.flow, Some(0));
    }

    #[test]
    fn lane_render_orders_tracks_and_draws_spans() {
        let report = TimelineReport::parse(&fixture()).unwrap();
        let text = report.render();
        let t0 = text.find("  t0 ").expect("t0 lane");
        let t1 = text.find("  t1 ").expect("t1 lane");
        let monitor = text.find("  monitor").expect("monitor lane");
        assert!(t0 < t1 && t1 < monitor, "threads before named lanes:\n{text}");
        assert!(text.contains("timeline [cyc]"));
        assert!(text.contains("timeline [us]"));
        assert!(text.contains('='), "phase glyphs drawn");
        assert!(text.contains('!'), "violation instant drawn");
    }

    #[test]
    fn empty_trace_renders_a_hint() {
        let report = TimelineReport::parse(r#"{"ev":"sample","tick":1}"#).unwrap();
        assert!(report.render().contains("--trace-spans"));
        assert!(report.phase_profile().render().contains("--trace-spans"));
    }

    #[test]
    fn chrome_export_has_required_structure() {
        let report = TimelineReport::parse(&fixture()).unwrap();
        let json = report.to_chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"ph\":\"X\""), "duration events");
        assert!(json.contains("\"ph\":\"M\""), "metadata events");
        assert!(json.contains("\"ph\":\"i\""), "instant events");
        assert!(json.contains("\"ph\":\"s\"") && json.contains("\"ph\":\"f\""), "flow pair");
        assert!(json.contains("\"process_name\""));
        assert!(json.contains("sim (cycles)"));
        assert!(json.contains("wall (us)"));
        assert!(json.contains("\"tid\":"));
        assert!(json.contains("\"args\":{"));
        // Braces and brackets balance (the splicing is by hand).
        let balance = |open: char, close: char| {
            json.chars().filter(|&c| c == open).count()
                == json.chars().filter(|&c| c == close).count()
        };
        assert!(balance('{', '}') && balance('[', ']'));
    }

    #[test]
    fn phase_profile_flags_the_straggler() {
        let report = TimelineReport::parse(&fixture()).unwrap();
        let profile = report.phase_profile();
        assert_eq!(profile.dom, "cyc");
        assert_eq!(profile.phases.len(), 2);
        assert_eq!(profile.deviant_threads(), vec![1], "t1 straggles in phase 0");
        let p0 = &profile.phases[0];
        assert!(p0.has_deviant());
        assert_eq!(p0.median_dur, 104);
        let t1 = p0.threads.iter().find(|t| t.tid == 1).unwrap();
        assert!(t1.deviant && t1.distance > 5.0, "{t1:?}");
        assert!(!profile.phases[1].has_deviant(), "phase 1 is symmetric");
        let text = profile.render();
        assert!(text.contains("DEVIANT"));
        assert!(text.contains("deviant thread(s): t1"));
    }

    #[test]
    fn symmetric_phases_report_all_threads_similar() {
        let lines: Vec<String> = (0..4)
            .map(|t| {
                format!(
                    r#"{{"ev":"tspan","kind":"span","dom":"cyc","track":"t{t}","cat":"barrier_phase","name":"phase 0","ts":0,"dur":{},"steps":100,"branches":10}}"#,
                    500 + t
                )
            })
            .collect();
        let report = TimelineReport::parse(&lines.join("\n")).unwrap();
        let profile = report.phase_profile();
        assert!(profile.deviant_threads().is_empty());
        assert!(profile.render().contains("all threads similar in every phase"));
    }

    #[test]
    fn two_thread_phases_are_never_flagged() {
        let text = [
            r#"{"ev":"tspan","kind":"span","dom":"cyc","track":"t0","cat":"barrier_phase","name":"phase 0","ts":0,"dur":10,"steps":5,"branches":1}"#,
            r#"{"ev":"tspan","kind":"span","dom":"cyc","track":"t1","cat":"barrier_phase","name":"phase 0","ts":0,"dur":9000,"steps":4000,"branches":400}"#,
        ]
        .join("\n");
        let profile = TimelineReport::parse(&text).unwrap().phase_profile();
        assert!(
            profile.deviant_threads().is_empty(),
            "no majority with two threads: {profile:?}"
        );
    }

    #[test]
    fn injection_scoped_phases_are_excluded_from_the_profile() {
        let text = [
            r#"{"ev":"tspan","kind":"span","dom":"cyc","track":"t0","cat":"barrier_phase","name":"phase 0","ts":0,"dur":100,"steps":50,"branches":5}"#,
            r#"{"ev":"tspan","kind":"span","dom":"cyc","track":"t1","cat":"barrier_phase","name":"phase 0","ts":0,"dur":101,"steps":50,"branches":5}"#,
            r#"{"ev":"tspan","kind":"span","dom":"cyc","track":"t2","cat":"barrier_phase","name":"phase 0","ts":0,"dur":99,"steps":50,"branches":5}"#,
            r#"{"ev":"tspan","kind":"span","dom":"cyc","track":"t1","cat":"barrier_phase","name":"phase 0","ts":0,"dur":99999,"steps":9000,"branches":900,"inj":3,"wid":0}"#,
        ]
        .join("\n");
        let profile = TimelineReport::parse(&text).unwrap().phase_profile();
        assert_eq!(profile.phases[0].threads.len(), 3, "faulty-run span excluded");
        assert!(profile.deviant_threads().is_empty());
    }
}
