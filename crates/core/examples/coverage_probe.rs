use blockwatch::reports::coverage_row;
use blockwatch::{Benchmark, FaultModel, Size};

fn main() {
    let injections: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(120);
    for model in [FaultModel::BranchFlip, FaultModel::ConditionBitFlip] {
        println!("== {model:?} ==");
        let mut orig_sum = 0.0;
        let mut prot_sum = 0.0;
        for bench in Benchmark::ALL {
            let row = coverage_row(bench, Size::Test, model, 4, injections, 0xc0ffee)
                .expect("campaign runs");
            println!(
                "{:22} orig {:5.1}%  bw {:5.1}%  | prot: det {:3} crash {:3} hung {:3} mask {:3} sdc {:3} | orig: crash {:3} sdc {:3}",
                row.name,
                100.0 * row.coverage_original(),
                100.0 * row.coverage_protected(),
                row.protected.detected, row.protected.crashed, row.protected.hung,
                row.protected.masked, row.protected.sdc,
                row.original.crashed, row.original.sdc,
            );
            orig_sum += row.coverage_original();
            prot_sum += row.coverage_protected();
        }
        println!("AVG orig {:.1}%  bw {:.1}%", 100.0 * orig_sum / 7.0, 100.0 * prot_sum / 7.0);
    }
}
