use blockwatch::reports::{geomean_at, overhead_series};
use blockwatch::Size;

fn main() {
    let threads = [1u32, 2, 4, 8, 16, 32];
    let series = overhead_series(Size::Small, &threads);
    for s in &series {
        print!("{:22}", s.name);
        for p in &s.points {
            print!(" {:2}t={:.2}", p.nthreads, p.ratio());
        }
        println!();
    }
    print!("{:22}", "GEOMEAN");
    for &n in &threads {
        print!(" {:2}t={:.2}", n, geomean_at(&series, n));
    }
    println!();
    println!("paper targets:          1t<2t, 4t~2.15, 32t~1.16");
}
