//! Violation provenance: a per-site flight recorder and the structured
//! [`ViolationReport`] evidence attached to every detection.
//!
//! A bare [`Violation`] says *that* the monitor flagged an instance; it
//! does not say *why*. This module keeps, per `(branch, site)`, a bounded
//! ring of the most recent reports (the **flight recorder**) and, at the
//! moment a check fails, snapshots the ring together with the full
//! per-thread outcome/witness vector, a majority/deviant split, and the
//! site's position in its own report stream into a [`ViolationReport`].
//! Every detection then ships with the evidence that produced it — no
//! re-execution needed.
//!
//! Recording is gated on the `provenance` cargo feature exactly like the
//! `tm_*!` telemetry macros: with the feature off, [`FlightRecorder`] is a
//! zero-sized type whose methods compile to nothing, and no report is ever
//! allocated. The [`ViolationReport`] *type* always compiles so downstream
//! structs ([`bw_vm::RunResult`]-style carriers) keep one shape in both
//! configurations.
//!
//! [`bw_vm::RunResult`]: https://docs.rs/bw-vm

use bw_analysis::{CheckKind, TidCheck};
use serde::{Deserialize, Serialize};

use crate::checker::{Report, ViolationKind};
use crate::monitor::Violation;

/// One flight-recorder entry: a thread's report plus where in the
/// *site's* report stream it was recorded.
///
/// `seq` is the per-`(branch, site)` record counter at record time
/// (1-based; thread reports for the flat [`crate::Monitor`], sub-monitor
/// batch entries for the hierarchical root), which makes detection latency
/// a simple subtraction of sequence numbers. Site-local numbering — rather
/// than a monitor-global message counter — keeps reports byte-identical no
/// matter how the key space is partitioned across monitor shards, since a
/// site's events always land on one shard in their original order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowEntry {
    /// Reporting thread id.
    pub thread: u32,
    /// Condition witness hash.
    pub witness: u64,
    /// Branch outcome.
    pub taken: bool,
    /// Level-2 instance key (loop-iteration hash) the report belongs to.
    pub iter: u64,
    /// Per-site record sequence number assigned when the report was
    /// recorded (see [`FlightRecorder::record`]).
    pub seq: u64,
}

/// Structured evidence for one [`Violation`]: everything the monitor knew
/// about the instance at the moment the check failed.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ViolationReport {
    /// The compact violation this report explains.
    pub violation: Violation,
    /// The similarity check that failed (the branch's static category).
    pub check: CheckKind,
    /// The full per-thread table of the violating instance, sorted by
    /// thread id.
    pub observed: Vec<Report>,
    /// Threads whose reports agree with the modal behaviour.
    pub majority: Vec<u32>,
    /// Threads whose reports deviate from the modal behaviour — the likely
    /// fault victims.
    pub deviants: Vec<u32>,
    /// The flight-recorder window of the violating `(branch, site)`,
    /// oldest entry first: recent history across *all* iterations of the
    /// site, not just the violating instance.
    pub window: Vec<WindowEntry>,
    /// Per-site record sequence number at which the check fired (the seq
    /// of the site's most recent report; topology-independent).
    pub detected_seq: u64,
    /// Instances of *this* `(branch, site)` still awaiting reporters when
    /// the check fired — the site's correlation backlog at detection time.
    pub pending_depth: u64,
    /// Site-stream records between the first deviant report reaching the
    /// monitor and the check firing (`detected_seq - deviant entry seq`).
    /// `None` when the deviant's entry had already aged out of the ring,
    /// or when no deviant could be singled out.
    pub detection_latency: Option<u64>,
}

impl ViolationReport {
    /// The paper's name for the branch's similarity category.
    pub fn category(&self) -> &'static str {
        category_name(self.check)
    }

    /// Human-readable statement of the cross-thread pattern the static
    /// analysis predicted for this branch.
    pub fn predicted(&self) -> &'static str {
        predicted_pattern(self.check)
    }

    /// A multi-line human-readable rendering: the violation header, the
    /// predicted pattern, and the per-thread table with each thread's
    /// majority/deviant role.
    pub fn describe(&self) -> String {
        use std::fmt::Write as _;
        let mut out = self.violation.describe();
        out.push('\n');
        let _ = writeln!(out, "  category {}; predicted: {}", self.category(), self.predicted());
        let _ = writeln!(out, "  {:<8} {:<18} {:<6} role", "thread", "witness", "taken");
        for r in &self.observed {
            let role = if self.deviants.contains(&r.thread) { "DEVIANT" } else { "majority" };
            let _ = writeln!(
                out,
                "  t{:<7} {:<18} {:<6} {role}",
                r.thread,
                format!("{:#x}", r.witness),
                if r.taken { "T" } else { "F" }
            );
        }
        let _ = write!(
            out,
            "  detected at seq {}, latency {}, {} pending instance(s)",
            self.detected_seq,
            match self.detection_latency {
                Some(n) => format!("{n} message(s)"),
                None => "unknown".to_string(),
            },
            self.pending_depth
        );
        out
    }

    /// The observed table as a compact flat string for the JSONL sink:
    /// `t0=w2a:T,t1=w2b:F` (witnesses in hex).
    pub fn observed_field(&self) -> String {
        self.observed
            .iter()
            .map(|r| format!("t{}=w{:x}:{}", r.thread, r.witness, if r.taken { 'T' } else { 'F' }))
            .collect::<Vec<_>>()
            .join(",")
    }

    /// The flight-recorder window as a compact flat string:
    /// `t0:i5:w2a:T:s12;...` (oldest first; iter/witness in hex).
    pub fn window_field(&self) -> String {
        self.window
            .iter()
            .map(|e| {
                format!(
                    "t{}:i{:x}:w{:x}:{}:s{}",
                    e.thread,
                    e.iter,
                    e.witness,
                    if e.taken { 'T' } else { 'F' },
                    e.seq
                )
            })
            .collect::<Vec<_>>()
            .join(";")
    }

    /// Comma-joined deviant thread ids (`"1,3"`; empty when none).
    pub fn deviants_field(&self) -> String {
        join_ids(&self.deviants)
    }

    /// Comma-joined majority thread ids.
    pub fn majority_field(&self) -> String {
        join_ids(&self.majority)
    }
}

fn join_ids(ids: &[u32]) -> String {
    ids.iter().map(|t| t.to_string()).collect::<Vec<_>>().join(",")
}

/// The paper's similarity-category name for a check kind (`shared`,
/// `threadID`, `partial`).
pub fn category_name(kind: CheckKind) -> &'static str {
    match kind {
        CheckKind::SharedUniform => "shared",
        CheckKind::ThreadIdPredicate(_) => "threadID",
        CheckKind::GroupByWitness => "partial",
    }
}

/// Stable lowercase name of a violation kind, used in JSONL trace records.
pub fn kind_name(kind: ViolationKind) -> &'static str {
    match kind {
        ViolationKind::WitnessMismatch => "witness_mismatch",
        ViolationKind::DirectionMismatch => "direction_mismatch",
        ViolationKind::GroupMismatch => "group_mismatch",
        ViolationKind::TidPredicate => "tid_predicate",
    }
}

/// Human-readable statement of the cross-thread pattern a check kind
/// expects.
pub fn predicted_pattern(kind: CheckKind) -> &'static str {
    match kind {
        CheckKind::SharedUniform => "all threads agree on witness and direction",
        CheckKind::GroupByWitness => "threads with equal witnesses take the same direction",
        CheckKind::ThreadIdPredicate(TidCheck::AtMostOneTaken) => {
            "uniform witness; at most one thread takes the branch"
        }
        CheckKind::ThreadIdPredicate(TidCheck::AtMostOneNotTaken) => {
            "uniform witness; at most one thread does not take the branch"
        }
        CheckKind::ThreadIdPredicate(TidCheck::TakenIsPrefix) => {
            "uniform witness; taking threads form a thread-id prefix"
        }
        CheckKind::ThreadIdPredicate(TidCheck::TakenIsSuffix) => {
            "uniform witness; taking threads form a thread-id suffix"
        }
    }
}

/// Splits an instance's reporters into (majority, deviants) thread-id
/// lists, keyed on the aspect the violation is about: witnesses for
/// witness mismatches, directions for direction/predicate failures, and
/// per-witness-group direction minorities for group mismatches. Modal ties
/// break towards the smaller key, so the split is deterministic.
pub fn majority_split(kind: ViolationKind, reports: &[Report]) -> (Vec<u32>, Vec<u32>) {
    match kind {
        ViolationKind::WitnessMismatch => split_modal(reports, |r| r.witness),
        ViolationKind::DirectionMismatch | ViolationKind::TidPredicate => {
            split_modal(reports, |r| u64::from(r.taken))
        }
        ViolationKind::GroupMismatch => split_groups(reports),
    }
}

/// Modal split over an arbitrary `u64` key: threads carrying the most
/// frequent key value are the majority, everyone else deviates.
fn split_modal(reports: &[Report], key: impl Fn(&Report) -> u64) -> (Vec<u32>, Vec<u32>) {
    use std::collections::BTreeMap;
    let mut counts: BTreeMap<u64, usize> = BTreeMap::new();
    for r in reports {
        *counts.entry(key(r)).or_default() += 1;
    }
    // BTreeMap iterates keys ascending, so `>` keeps the smaller key on a
    // tie.
    let modal = counts
        .iter()
        .fold((0u64, 0usize), |best, (&k, &n)| if n > best.1 { (k, n) } else { best })
        .0;
    partition(reports, |r| key(r) == modal)
}

/// Group-mismatch split: within each witness group with mixed directions,
/// the less common direction is deviant (ties deviate the takers).
fn split_groups(reports: &[Report]) -> (Vec<u32>, Vec<u32>) {
    use std::collections::BTreeMap;
    let mut groups: BTreeMap<u64, (usize, usize)> = BTreeMap::new();
    for r in reports {
        let g = groups.entry(r.witness).or_default();
        if r.taken {
            g.0 += 1;
        } else {
            g.1 += 1;
        }
    }
    partition(reports, |r| {
        let (taken, not_taken) = groups[&r.witness];
        if taken == 0 || not_taken == 0 {
            return true; // uniform group: not part of the conflict
        }
        if r.taken {
            taken > not_taken
        } else {
            not_taken >= taken
        }
    })
}

fn partition(reports: &[Report], majority: impl Fn(&Report) -> bool) -> (Vec<u32>, Vec<u32>) {
    let mut maj = Vec::new();
    let mut dev = Vec::new();
    for r in reports {
        if majority(r) {
            maj.push(r.thread);
        } else {
            dev.push(r.thread);
        }
    }
    maj.sort_unstable();
    dev.sort_unstable();
    (maj, dev)
}

/// Assembles a [`ViolationReport`] at detection time: sorts the observed
/// table, computes the majority/deviant split, and derives the detection
/// latency from the deviants' flight-recorder entries.
pub fn build_report(
    violation: Violation,
    check: CheckKind,
    reports: &[Report],
    window: Vec<WindowEntry>,
    detected_seq: u64,
    pending_depth: u64,
) -> ViolationReport {
    let mut observed = reports.to_vec();
    observed.sort_unstable_by_key(|r| r.thread);
    let (majority, deviants) = majority_split(violation.kind, reports);
    // Latency: messages between the first deviant report of *this*
    // instance reaching the monitor and the check firing. The entry may
    // have aged out of the bounded ring, in which case it is unknown.
    let detection_latency = window
        .iter()
        .filter(|e| e.iter == violation.iter && deviants.contains(&e.thread))
        .map(|e| e.seq)
        .min()
        .map(|seq| detected_seq.saturating_sub(seq));
    ViolationReport {
        violation,
        check,
        observed,
        majority,
        deviants,
        window,
        detected_seq,
        pending_depth,
        detection_latency,
    }
}

/// Ring capacity for a monitor serving `nthreads` reporters: a few full
/// instances of history per site, bounded so a long campaign cannot grow
/// the recorder past a fixed budget per `(branch, site)`.
pub fn window_capacity(nthreads: usize) -> usize {
    (4 * nthreads.max(1)).clamp(16, 1024)
}

/// Whether flight recording is compiled in (`provenance` cargo feature).
pub const PROVENANCE_ENABLED: bool = cfg!(feature = "provenance");

/// The per-site flight recorder: a fixed-capacity ring of recent
/// [`WindowEntry`]s per `(branch, site)`.
///
/// With the `provenance` feature off this is a zero-sized type and
/// [`FlightRecorder::record`] compiles to nothing — the hot path pays
/// nothing, exactly like the `tm_*!` macros.
#[cfg(feature = "provenance")]
#[derive(Debug, Default)]
pub struct FlightRecorder {
    rings: std::collections::HashMap<(u32, u64), SiteRing>,
    capacity: usize,
}

#[cfg(feature = "provenance")]
#[derive(Debug)]
struct SiteRing {
    /// Entries in ring order; meaningful up to `len`, overwritten at
    /// `next` once full.
    entries: Vec<WindowEntry>,
    next: usize,
    /// Records ever made to this site's ring (1-based seq of the newest
    /// entry), including entries that have since aged out.
    seq: u64,
}

#[cfg(feature = "provenance")]
impl FlightRecorder {
    /// A recorder whose per-site rings hold `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        FlightRecorder { rings: std::collections::HashMap::new(), capacity: capacity.max(1) }
    }

    /// Appends one entry to the `(branch, site)` ring and returns the
    /// per-site sequence number it was assigned — `entry.seq` is
    /// overwritten with the site stream's next value (1-based), so callers
    /// never number entries themselves. Hot path: one hash lookup and one
    /// slot write; allocation only the first `capacity` times a site is
    /// seen.
    #[inline]
    pub fn record(&mut self, branch: u32, site: u64, mut entry: WindowEntry) -> u64 {
        let capacity = self.capacity;
        let ring = self
            .rings
            .entry((branch, site))
            .or_insert_with(|| SiteRing { entries: Vec::new(), next: 0, seq: 0 });
        ring.seq += 1;
        entry.seq = ring.seq;
        if ring.entries.len() < capacity {
            ring.entries.push(entry);
        } else {
            ring.entries[ring.next] = entry;
            ring.next = (ring.next + 1) % capacity;
        }
        ring.seq
    }

    /// The per-site sequence number of the most recent record at
    /// `(branch, site)`; zero when the site was never recorded.
    pub fn site_seq(&self, branch: u32, site: u64) -> u64 {
        self.rings.get(&(branch, site)).map_or(0, |r| r.seq)
    }

    /// Snapshot of the `(branch, site)` ring, oldest entry first.
    pub fn window(&self, branch: u32, site: u64) -> Vec<WindowEntry> {
        match self.rings.get(&(branch, site)) {
            Some(ring) => {
                let mut out =
                    Vec::with_capacity(ring.entries.len());
                out.extend_from_slice(&ring.entries[ring.next..]);
                out.extend_from_slice(&ring.entries[..ring.next]);
                out
            }
            None => Vec::new(),
        }
    }

    /// Number of `(branch, site)` rings currently held.
    pub fn sites(&self) -> usize {
        self.rings.len()
    }
}

/// The per-site flight recorder, compiled out (`provenance` feature off):
/// zero-sized, never records, never allocates.
#[cfg(not(feature = "provenance"))]
#[derive(Debug, Default)]
pub struct FlightRecorder;

#[cfg(not(feature = "provenance"))]
impl FlightRecorder {
    /// A recorder whose per-site rings would hold `capacity` entries
    /// (no-op in this configuration).
    #[inline]
    pub fn new(_capacity: usize) -> Self {
        FlightRecorder
    }

    /// Recording compiles to nothing without the `provenance` feature;
    /// the returned sequence number is always zero.
    #[inline]
    pub fn record(&mut self, _branch: u32, _site: u64, _entry: WindowEntry) -> u64 {
        0
    }

    /// Always zero without the `provenance` feature.
    #[inline]
    pub fn site_seq(&self, _branch: u32, _site: u64) -> u64 {
        0
    }

    /// Always empty without the `provenance` feature.
    #[inline]
    pub fn window(&self, _branch: u32, _site: u64) -> Vec<WindowEntry> {
        Vec::new()
    }

    /// Always zero without the `provenance` feature.
    #[inline]
    pub fn sites(&self) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rep(thread: u32, witness: u64, taken: bool) -> Report {
        Report { thread, witness, taken }
    }

    #[test]
    fn modal_split_singles_out_the_liar() {
        let reports =
            [rep(0, 42, true), rep(1, 999, true), rep(2, 42, true), rep(3, 42, true)];
        let (maj, dev) = majority_split(ViolationKind::WitnessMismatch, &reports);
        assert_eq!(maj, vec![0, 2, 3]);
        assert_eq!(dev, vec![1]);
    }

    #[test]
    fn direction_split_keys_on_taken() {
        let reports = [rep(0, 7, true), rep(1, 7, false), rep(2, 7, true)];
        let (maj, dev) = majority_split(ViolationKind::DirectionMismatch, &reports);
        assert_eq!(maj, vec![0, 2]);
        assert_eq!(dev, vec![1]);
    }

    #[test]
    fn tie_breaks_toward_smaller_key() {
        // 1 taken vs 1 not-taken: `false` (0) is the smaller key, so the
        // taker deviates — deterministically.
        let reports = [rep(0, 7, false), rep(1, 7, true)];
        let (maj, dev) = majority_split(ViolationKind::DirectionMismatch, &reports);
        assert_eq!(maj, vec![0]);
        assert_eq!(dev, vec![1]);
    }

    #[test]
    fn group_split_blames_the_minority_inside_the_conflicting_group() {
        // Witness 5: two take, one doesn't → the one deviates. Witness 9:
        // uniform → all majority.
        let reports =
            [rep(0, 5, true), rep(1, 5, false), rep(2, 5, true), rep(3, 9, false)];
        let (maj, dev) = majority_split(ViolationKind::GroupMismatch, &reports);
        assert_eq!(maj, vec![0, 2, 3]);
        assert_eq!(dev, vec![1]);
    }

    #[test]
    fn build_report_derives_latency_from_the_window() {
        let violation = Violation {
            branch: 3,
            site: 0xabc,
            iter: 7,
            kind: ViolationKind::WitnessMismatch,
            reporters: 2,
        };
        let reports = [rep(0, 42, true), rep(1, 99, true), rep(2, 42, true)];
        let window = vec![
            WindowEntry { thread: 0, witness: 42, taken: true, iter: 7, seq: 10 },
            WindowEntry { thread: 1, witness: 99, taken: true, iter: 7, seq: 11 },
            WindowEntry { thread: 2, witness: 42, taken: true, iter: 7, seq: 14 },
        ];
        let report =
            build_report(violation, CheckKind::SharedUniform, &reports, window, 14, 2);
        assert_eq!(report.deviants, vec![1]);
        assert_eq!(report.majority, vec![0, 2]);
        assert_eq!(report.detection_latency, Some(3));
        assert_eq!(report.category(), "shared");
        assert_eq!(report.observed_field(), "t0=w2a:T,t1=w63:T,t2=w2a:T");
        assert_eq!(report.deviants_field(), "1");
        let text = report.describe();
        assert!(text.contains("DEVIANT"), "{text}");
        assert!(text.contains("latency 3 message(s)"), "{text}");
    }

    #[test]
    fn latency_is_unknown_when_the_deviant_aged_out() {
        let violation = Violation {
            branch: 0,
            site: 0,
            iter: 7,
            kind: ViolationKind::WitnessMismatch,
            reporters: 2,
        };
        let reports = [rep(0, 1, true), rep(1, 2, true)];
        // Window only holds iterations after the violating one.
        let window =
            vec![WindowEntry { thread: 0, witness: 1, taken: true, iter: 8, seq: 20 }];
        let report = build_report(violation, CheckKind::SharedUniform, &reports, window, 21, 0);
        assert_eq!(report.detection_latency, None);
        assert!(report.describe().contains("latency unknown"));
    }

    #[cfg(feature = "provenance")]
    #[test]
    fn ring_wraps_at_capacity_keeping_the_newest_entries() {
        let mut fr = FlightRecorder::new(4);
        for i in 0..10u64 {
            let assigned = fr.record(
                1,
                0xfeed,
                WindowEntry { thread: (i % 2) as u32, witness: i, taken: true, iter: i, seq: 0 },
            );
            assert_eq!(assigned, i + 1, "seq is 1-based and site-local");
        }
        let window = fr.window(1, 0xfeed);
        assert_eq!(window.len(), 4);
        let seqs: Vec<u64> = window.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![7, 8, 9, 10], "oldest-first, newest kept");
        assert!(fr.window(1, 0xbeef).is_empty());
        assert_eq!(fr.sites(), 1);
        assert_eq!(fr.site_seq(1, 0xfeed), 10);
        assert_eq!(fr.site_seq(1, 0xbeef), 0);
    }

    #[cfg(feature = "provenance")]
    #[test]
    fn site_seq_streams_are_independent() {
        let mut fr = FlightRecorder::new(8);
        let entry = |t: u32| WindowEntry { thread: t, witness: 1, taken: true, iter: 0, seq: 0 };
        assert_eq!(fr.record(0, 0xa, entry(0)), 1);
        assert_eq!(fr.record(0, 0xb, entry(0)), 1, "each site numbers its own stream");
        assert_eq!(fr.record(0, 0xa, entry(1)), 2);
        assert_eq!(fr.site_seq(0, 0xa), 2);
        assert_eq!(fr.site_seq(0, 0xb), 1);
    }

    #[cfg(not(feature = "provenance"))]
    #[test]
    fn recorder_is_zero_sized_and_inert_when_disabled() {
        assert_eq!(std::mem::size_of::<FlightRecorder>(), 0);
        let mut fr = FlightRecorder::new(64);
        let seq =
            fr.record(0, 0, WindowEntry { thread: 0, witness: 0, taken: true, iter: 0, seq: 0 });
        assert_eq!(seq, 0);
        assert!(fr.window(0, 0).is_empty());
        assert_eq!(fr.sites(), 0);
        assert_eq!(fr.site_seq(0, 0), 0);
        assert_eq!(PROVENANCE_ENABLED, cfg!(feature = "provenance"));
    }

    #[test]
    fn window_capacity_scales_with_threads_within_bounds() {
        assert_eq!(window_capacity(1), 16);
        assert_eq!(window_capacity(8), 32);
        assert_eq!(window_capacity(10_000), 1024);
    }
}
