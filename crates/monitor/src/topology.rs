//! The unified monitor construction surface: one [`MonitorBuilder`] covers
//! every ingest shape behind a [`MonitorTopology`] enum.
//!
//! Before this existed each topology had its own ad-hoc constructor —
//! a `MonitorThread` for flat ingest, explicit-queue
//! [`crate::HierarchicalMonitorThread`] spawns for the Section VI tree —
//! and callers wired queues, senders, and drop counters by hand,
//! differently each time. Those constructors are gone; the builder owns
//! that wiring: it creates the queues, hands
//! back one routing [`EventSender`] per application thread, and returns a
//! [`MonitorHandle`] whose `join` produces a [`MonitorVerdict`] with the
//! same shape for every topology. Choosing sharded ingest is flipping an
//! enum variant, not adopting a parallel code path.

use std::sync::atomic::AtomicU64;
use std::sync::Arc;

use bw_telemetry::TelemetrySnapshot;

use crate::event::BranchEvent;
use crate::hierarchy::HierarchicalMonitorThread;
use crate::monitor::{CheckTable, EventSender, Monitor, Violation};
use crate::provenance::ViolationReport;
use crate::shard::{per_shard_capacity, ShardedMonitorThread};
use crate::spsc::{spsc_queue, Consumer};

/// How monitor ingest is laid out across OS threads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MonitorTopology {
    /// One monitor thread drains every producer queue (the paper's base
    /// design). Equivalent to `Sharded { shards: 1 }`.
    Flat,
    /// The Section VI tree: sub-monitor threads aggregate subgroups of
    /// `fanout` producers each and forward instance batches to one root.
    Hierarchical {
        /// Producer threads per sub-monitor (must be positive).
        fanout: usize,
    },
    /// `shards` monitor threads, each owning the `(site, branch)` keys that
    /// hash to it ([`crate::shard_of`]); producers route per event.
    Sharded {
        /// Number of key-space shards (must be positive).
        shards: usize,
    },
}

impl MonitorTopology {
    /// How many shard queues a producer routes across (1 for flat and
    /// hierarchical ingest).
    pub fn shard_count(&self) -> usize {
        match *self {
            MonitorTopology::Sharded { shards } => shards,
            MonitorTopology::Flat | MonitorTopology::Hierarchical { .. } => 1,
        }
    }
}

/// Everything a monitor topology reports at join, in one shape.
#[derive(Debug)]
pub struct MonitorVerdict {
    /// Detected violations, in the engine's canonical
    /// `(site, branch, iter, kind)` order.
    pub violations: Vec<Violation>,
    /// Structured evidence, in lockstep with `violations` (empty without
    /// the `provenance` feature).
    pub violation_reports: Vec<ViolationReport>,
    /// Events processed across every monitor worker.
    pub events_processed: u64,
    /// Sender-side drops across every monitor worker. Nonzero means
    /// verdicts may have missed violations.
    pub events_dropped: u64,
    /// Merged `monitor.*` telemetry (counters summed, gauges maxed), plus
    /// per-shard `monitor.shard.<i>.*` metrics when sharded.
    pub telemetry: TelemetrySnapshot,
}

impl MonitorVerdict {
    /// Whether any violation was detected.
    pub fn detected(&self) -> bool {
        !self.violations.is_empty()
    }

    /// Merges per-shard monitors into one verdict. Violations and reports
    /// are sorted into the engine's canonical order so the result is
    /// independent of how the key space was partitioned; counters sum,
    /// telemetry merges. With more than one shard, per-shard
    /// `monitor.shard.<i>.{events_processed, events_dropped}` counters and
    /// `monitor.shard.<i>.queue_high_water` gauges are appended so `bw
    /// stats` can show ingest balance.
    pub(crate) fn merge_monitors(monitors: Vec<Monitor>) -> MonitorVerdict {
        let sharded = monitors.len() > 1;
        let mut events_processed = 0;
        let mut events_dropped = 0;
        let mut telemetry = TelemetrySnapshot::new();
        let mut violations = Vec::new();
        let mut violation_reports = Vec::new();
        for (i, monitor) in monitors.into_iter().enumerate() {
            events_processed += monitor.events_processed();
            events_dropped += monitor.events_dropped();
            telemetry.merge(&monitor.snapshot());
            if sharded {
                telemetry.push_counter(
                    format!("monitor.shard.{i}.events_processed"),
                    monitor.events_processed(),
                );
                telemetry.push_counter(
                    format!("monitor.shard.{i}.events_dropped"),
                    monitor.events_dropped(),
                );
                telemetry.push_gauge(
                    format!("monitor.shard.{i}.queue_high_water"),
                    monitor.telemetry().queue_high_water.get(),
                );
            }
            let (v, r) = monitor.into_results();
            violations.extend(v);
            violation_reports.extend(r);
        }
        violations.sort_unstable_by_key(|v| (v.site, v.branch, v.iter, v.kind));
        violation_reports
            .sort_by_key(|r| (r.violation.site, r.violation.branch, r.violation.iter, r.violation.kind));
        MonitorVerdict {
            violations,
            violation_reports,
            events_processed,
            events_dropped,
            telemetry,
        }
    }
}

/// A running monitor of any topology; join to collect the verdict.
pub struct MonitorHandle {
    inner: HandleInner,
}

enum HandleInner {
    /// Flat and sharded ingest share one implementation: flat is one shard.
    Sharded(ShardedMonitorThread),
    Tree(HierarchicalMonitorThread),
}

impl MonitorHandle {
    /// Stops the monitor once its queues drain and merges the final state
    /// into a [`MonitorVerdict`] (drop or join the sending threads first so
    /// drop counts have been flushed).
    ///
    /// # Panics
    ///
    /// Panics if a monitor thread panicked.
    pub fn join(self) -> MonitorVerdict {
        match self.inner {
            HandleInner::Sharded(t) => t.join(),
            HandleInner::Tree(t) => {
                let (root, events_processed) = t.join();
                let mut violations = root.violations().to_vec();
                let mut violation_reports = root.violation_reports().to_vec();
                violations.sort_unstable_by_key(|v| (v.site, v.branch, v.iter, v.kind));
                violation_reports.sort_by_key(|r| {
                    (r.violation.site, r.violation.branch, r.violation.iter, r.violation.kind)
                });
                MonitorVerdict {
                    violations,
                    violation_reports,
                    events_processed,
                    events_dropped: root.events_dropped(),
                    telemetry: root.snapshot(),
                }
            }
        }
    }
}

/// Builds and spawns a monitor of any [`MonitorTopology`], wiring queues,
/// routing senders, and drop accounting uniformly.
///
/// ```ignore
/// let (senders, handle) = MonitorBuilder::new(checks, nthreads)
///     .topology(MonitorTopology::Sharded { shards: 4 })
///     .queue_capacity(1 << 14)
///     .spawn();
/// // ... one EventSender per application thread ...
/// let verdict = handle.join();
/// ```
#[derive(Debug)]
pub struct MonitorBuilder {
    checks: CheckTable,
    nthreads: usize,
    topology: MonitorTopology,
    queue_capacity: usize,
}

impl MonitorBuilder {
    /// A builder for `nthreads` application threads checking according to
    /// `checks`; flat topology and a 16Ki-slot per-thread queue budget by
    /// default.
    pub fn new(checks: CheckTable, nthreads: usize) -> Self {
        MonitorBuilder { checks, nthreads, topology: MonitorTopology::Flat, queue_capacity: 1 << 14 }
    }

    /// Selects the ingest topology.
    pub fn topology(mut self, topology: MonitorTopology) -> Self {
        self.topology = topology;
        self
    }

    /// Sets the *total* per-thread queue budget in events. Sharded ingest
    /// splits the budget across shards ([`per_shard_capacity`]); flat and
    /// hierarchical ingest give the single queue the whole budget.
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Spawns the monitor threads and returns one routing [`EventSender`]
    /// per application thread (index = thread id) plus the handle to join.
    ///
    /// # Panics
    ///
    /// Panics if the topology's fanout or shard count is zero, or if the
    /// queue capacity is zero.
    pub fn spawn(self) -> (Vec<EventSender>, MonitorHandle) {
        crate::live::register();
        match self.topology {
            MonitorTopology::Hierarchical { fanout } => {
                assert!(fanout > 0, "fanout must be positive");
                let drops = Arc::new(AtomicU64::new(0));
                let mut senders = Vec::with_capacity(self.nthreads);
                let mut queues = Vec::with_capacity(self.nthreads);
                for _ in 0..self.nthreads {
                    let (p, c) = spsc_queue(self.queue_capacity);
                    senders.push(EventSender::with_drop_counter(p, Arc::clone(&drops)));
                    queues.push(c);
                }
                let tree = HierarchicalMonitorThread::spawn_internal(
                    self.checks,
                    self.nthreads,
                    queues,
                    fanout,
                    drops,
                );
                (senders, MonitorHandle { inner: HandleInner::Tree(tree) })
            }
            MonitorTopology::Flat | MonitorTopology::Sharded { .. } => {
                let shards = self.topology.shard_count();
                assert!(shards > 0, "shard count must be positive");
                let capacity = per_shard_capacity(self.queue_capacity, shards);
                let shard_drops: Vec<Arc<AtomicU64>> =
                    (0..shards).map(|_| Arc::new(AtomicU64::new(0))).collect();
                let mut shard_queues: Vec<Vec<Consumer<BranchEvent>>> =
                    (0..shards).map(|_| Vec::with_capacity(self.nthreads)).collect();
                let mut senders = Vec::with_capacity(self.nthreads);
                for _ in 0..self.nthreads {
                    let mut producers = Vec::with_capacity(shards);
                    for queues in shard_queues.iter_mut() {
                        let (p, c) = spsc_queue(capacity);
                        producers.push(p);
                        queues.push(c);
                    }
                    senders.push(EventSender::fanned(
                        producers,
                        shard_drops.iter().map(Arc::clone).collect(),
                    ));
                }
                let monitor = ShardedMonitorThread::spawn(
                    self.checks,
                    self.nthreads,
                    shard_queues,
                    shard_drops,
                );
                (senders, MonitorHandle { inner: HandleInner::Sharded(monitor) })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bw_analysis::CheckKind;

    fn checks() -> CheckTable {
        CheckTable::from_kinds(vec![Some(CheckKind::SharedUniform)])
    }

    fn drive(topology: MonitorTopology) -> MonitorVerdict {
        let nthreads = 4usize;
        let (senders, handle) =
            MonitorBuilder::new(checks(), nthreads).topology(topology).spawn();
        let producers: Vec<_> = senders
            .into_iter()
            .enumerate()
            .map(|(t, mut sender)| {
                std::thread::spawn(move || {
                    for site in 0..8u64 {
                        for iter in 0..25u64 {
                            // Thread 1 lies at site 3, iteration 7.
                            let lie = t == 1 && site == 3 && iter == 7;
                            let witness = if lie { 0xbad } else { iter };
                            sender.send(BranchEvent {
                                branch: 0,
                                thread: t as u32,
                                site,
                                iter,
                                witness,
                                taken: true,
                            });
                        }
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        handle.join()
    }

    #[test]
    fn every_topology_reaches_the_same_verdict() {
        for topology in [
            MonitorTopology::Flat,
            MonitorTopology::Hierarchical { fanout: 2 },
            MonitorTopology::Sharded { shards: 1 },
            MonitorTopology::Sharded { shards: 4 },
        ] {
            let verdict = drive(topology);
            assert_eq!(verdict.events_processed, 4 * 8 * 25, "{topology:?}");
            assert_eq!(verdict.events_dropped, 0, "{topology:?}");
            assert_eq!(verdict.violations.len(), 1, "{topology:?}");
            assert_eq!(verdict.violations[0].site, 3, "{topology:?}");
            assert_eq!(verdict.violations[0].iter, 7, "{topology:?}");
            assert_eq!(
                verdict.violation_reports.len(),
                if cfg!(feature = "provenance") { 1 } else { 0 },
                "{topology:?}"
            );
            assert!(verdict.detected());
        }
    }

    #[test]
    fn sharded_verdicts_carry_per_shard_metrics() {
        let verdict = drive(MonitorTopology::Sharded { shards: 4 });
        let counters = verdict.telemetry.counters();
        let per_shard: Vec<&(String, u64)> = counters
            .iter()
            .filter(|(name, _)| name.starts_with("monitor.shard."))
            .collect();
        let processed: u64 = per_shard
            .iter()
            .filter(|(name, _)| name.ends_with(".events_processed"))
            .map(|(_, v)| v)
            .sum();
        assert_eq!(processed, verdict.events_processed, "shard counters sum to the total");
        // Flat verdicts stay label-free.
        let flat = drive(MonitorTopology::Flat);
        assert!(flat
            .telemetry
            .counters()
            .iter()
            .all(|(name, _)| !name.starts_with("monitor.shard.")));
    }

    #[test]
    fn shard_count_is_one_except_for_sharded() {
        assert_eq!(MonitorTopology::Flat.shard_count(), 1);
        assert_eq!(MonitorTopology::Hierarchical { fanout: 4 }.shard_count(), 1);
        assert_eq!(MonitorTopology::Sharded { shards: 8 }.shard_count(), 8);
    }
}
