//! Per-category instance checkers: given every thread's report for one
//! runtime instance of a branch, decide whether the reports are consistent
//! with the statically inferred similarity.

use bw_analysis::{CheckKind, TidCheck};
use serde::{Deserialize, Serialize};

/// One thread's report for a branch instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Report {
    /// Reporting thread id.
    pub thread: u32,
    /// Condition witness hash.
    pub witness: u64,
    /// Branch outcome.
    pub taken: bool,
}

/// Why an instance violated its check.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ViolationKind {
    /// A `shared` (or threadID) branch saw differing condition witnesses.
    WitnessMismatch,
    /// A `shared` branch saw differing outcomes.
    DirectionMismatch,
    /// Threads with equal witnesses took different directions.
    GroupMismatch,
    /// The outcomes violated the thread-ID predicate.
    TidPredicate,
}

/// Checks one instance's reports against `kind`.
///
/// Checks need at least two reporters (the paper: "BLOCKWATCH needs a
/// minimum of two threads"); instances with fewer pass vacuously.
///
/// # Errors
///
/// Returns the kind of violation when the reports are inconsistent with the
/// statically inferred similarity.
pub fn check_instance(kind: CheckKind, reports: &[Report]) -> Result<(), ViolationKind> {
    if reports.len() < 2 {
        return Ok(());
    }
    match kind {
        CheckKind::SharedUniform => {
            let w0 = reports[0].witness;
            if reports.iter().any(|r| r.witness != w0) {
                return Err(ViolationKind::WitnessMismatch);
            }
            let t0 = reports[0].taken;
            if reports.iter().any(|r| r.taken != t0) {
                return Err(ViolationKind::DirectionMismatch);
            }
            Ok(())
        }
        CheckKind::GroupByWitness => check_groups(reports),
        CheckKind::ThreadIdPredicate(tid) => {
            // The witness carries the shared side of the comparison: it must
            // agree across threads.
            let w0 = reports[0].witness;
            if reports.iter().any(|r| r.witness != w0) {
                return Err(ViolationKind::WitnessMismatch);
            }
            check_tid(tid, reports)
        }
    }
}

fn check_groups(reports: &[Report]) -> Result<(), ViolationKind> {
    // Group sizes are tiny (≤ nthreads); quadratic scan beats allocation.
    for (i, a) in reports.iter().enumerate() {
        for b in &reports[i + 1..] {
            if a.witness == b.witness && a.taken != b.taken {
                return Err(ViolationKind::GroupMismatch);
            }
        }
    }
    Ok(())
}

fn check_tid(tid: TidCheck, reports: &[Report]) -> Result<(), ViolationKind> {
    match tid {
        TidCheck::AtMostOneTaken => {
            if reports.iter().filter(|r| r.taken).count() > 1 {
                Err(ViolationKind::TidPredicate)
            } else {
                Ok(())
            }
        }
        TidCheck::AtMostOneNotTaken => {
            if reports.iter().filter(|r| !r.taken).count() > 1 {
                Err(ViolationKind::TidPredicate)
            } else {
                Ok(())
            }
        }
        TidCheck::TakenIsPrefix => check_monotone(reports, true),
        TidCheck::TakenIsSuffix => check_monotone(reports, false),
    }
}

/// For `tid < shared`-style predicates the takers form a prefix of the
/// thread IDs: whenever `t1 < t2` and `t2` took the branch, `t1` must have
/// too (suffix is the mirror image).
fn check_monotone(reports: &[Report], prefix: bool) -> Result<(), ViolationKind> {
    for a in reports {
        for b in reports {
            let (lo, hi) = if a.thread < b.thread { (a, b) } else { continue };
            let violated = if prefix { hi.taken && !lo.taken } else { lo.taken && !hi.taken };
            if violated {
                return Err(ViolationKind::TidPredicate);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(thread: u32, witness: u64, taken: bool) -> Report {
        Report { thread, witness, taken }
    }

    #[test]
    fn single_reporter_passes_vacuously() {
        for kind in [
            CheckKind::SharedUniform,
            CheckKind::GroupByWitness,
            CheckKind::ThreadIdPredicate(TidCheck::AtMostOneTaken),
        ] {
            assert_eq!(check_instance(kind, &[r(0, 1, true)]), Ok(()));
            assert_eq!(check_instance(kind, &[]), Ok(()));
        }
    }

    #[test]
    fn shared_uniform_accepts_agreement() {
        let reports = [r(0, 42, true), r(1, 42, true), r(2, 42, true)];
        assert_eq!(check_instance(CheckKind::SharedUniform, &reports), Ok(()));
    }

    #[test]
    fn shared_uniform_flags_witness_mismatch() {
        let reports = [r(0, 42, true), r(1, 43, true)];
        assert_eq!(
            check_instance(CheckKind::SharedUniform, &reports),
            Err(ViolationKind::WitnessMismatch)
        );
    }

    #[test]
    fn shared_uniform_flags_direction_mismatch() {
        let reports = [r(0, 42, true), r(1, 42, false)];
        assert_eq!(
            check_instance(CheckKind::SharedUniform, &reports),
            Err(ViolationKind::DirectionMismatch)
        );
    }

    #[test]
    fn group_check_allows_distinct_groups() {
        let reports = [r(0, 1, true), r(1, 1, true), r(2, 2, false), r(3, 2, false)];
        assert_eq!(check_instance(CheckKind::GroupByWitness, &reports), Ok(()));
    }

    #[test]
    fn group_check_flags_split_group() {
        let reports = [r(0, 1, true), r(1, 2, false), r(2, 1, false)];
        assert_eq!(
            check_instance(CheckKind::GroupByWitness, &reports),
            Err(ViolationKind::GroupMismatch)
        );
    }

    #[test]
    fn at_most_one_taken() {
        let kind = CheckKind::ThreadIdPredicate(TidCheck::AtMostOneTaken);
        assert_eq!(check_instance(kind, &[r(0, 0, true), r(1, 0, false)]), Ok(()));
        assert_eq!(check_instance(kind, &[r(0, 0, false), r(1, 0, false)]), Ok(()));
        assert_eq!(
            check_instance(kind, &[r(0, 0, true), r(1, 0, true)]),
            Err(ViolationKind::TidPredicate)
        );
    }

    #[test]
    fn at_most_one_not_taken() {
        let kind = CheckKind::ThreadIdPredicate(TidCheck::AtMostOneNotTaken);
        assert_eq!(check_instance(kind, &[r(0, 0, false), r(1, 0, true)]), Ok(()));
        assert_eq!(
            check_instance(kind, &[r(0, 0, false), r(1, 0, false), r(2, 0, true)]),
            Err(ViolationKind::TidPredicate)
        );
    }

    #[test]
    fn prefix_predicate() {
        let kind = CheckKind::ThreadIdPredicate(TidCheck::TakenIsPrefix);
        // tid < 2: threads 0,1 take, 2,3 don't.
        let good = [r(0, 9, true), r(1, 9, true), r(2, 9, false), r(3, 9, false)];
        assert_eq!(check_instance(kind, &good), Ok(()));
        // Hole in the prefix: thread 1 flipped.
        let bad = [r(0, 9, true), r(1, 9, false), r(2, 9, true)];
        assert_eq!(check_instance(kind, &bad), Err(ViolationKind::TidPredicate));
    }

    #[test]
    fn suffix_predicate() {
        let kind = CheckKind::ThreadIdPredicate(TidCheck::TakenIsSuffix);
        let good = [r(0, 9, false), r(1, 9, false), r(2, 9, true), r(3, 9, true)];
        assert_eq!(check_instance(kind, &good), Ok(()));
        let bad = [r(0, 9, true), r(1, 9, false)];
        assert_eq!(check_instance(kind, &bad), Err(ViolationKind::TidPredicate));
    }

    #[test]
    fn prefix_works_on_subset_of_threads() {
        let kind = CheckKind::ThreadIdPredicate(TidCheck::TakenIsPrefix);
        // Only threads 1 and 3 reported; 3 took, 1 did not → violation.
        let bad = [r(1, 9, false), r(3, 9, true)];
        assert_eq!(check_instance(kind, &bad), Err(ViolationKind::TidPredicate));
    }

    #[test]
    fn tid_predicate_checks_shared_witness_too() {
        let kind = CheckKind::ThreadIdPredicate(TidCheck::AtMostOneTaken);
        let reports = [r(0, 1, true), r(1, 2, false)];
        assert_eq!(check_instance(kind, &reports), Err(ViolationKind::WitnessMismatch));
    }
}
