//! Sharded monitor ingest: N monitors, each owning a disjoint slice of the
//! `(site, branch)` key space.
//!
//! The flat monitor is the first component to saturate at high thread
//! counts — every application thread funnels into one drain loop. But the
//! monitor's correlation is strictly per-key: two events interact only when
//! they share `(branch, site)`, so the key space can be partitioned across
//! independent workers with **no cross-shard coordination at all**. Each
//! shard owns its own pending [`crate::BranchTable`], checker, and
//! (feature-gated) flight recorder; producers route every event to the
//! owning shard's SPSC queue ([`shard_of`]), and shards drain in batches
//! ([`crate::Consumer::pop_batch`]) to amortize per-event synchronization.
//!
//! Determinism: a site's events always land on exactly one shard, in the
//! order the producing thread sent them, and flight-recorder sequence
//! numbers are site-local — so every shard computes byte-identical
//! violations and [`crate::ViolationReport`]s to what a flat monitor would
//! have computed for those keys. Merging at join sorts both lists in the
//! engine's canonical `(site, branch, iter, kind)` order, making the final
//! verdict independent of the shard count.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use bw_telemetry::{tm_gauge_max, TimeDomain, Value};

use crate::event::{hash_words, BranchEvent};
use crate::monitor::{CheckTable, Monitor};
use crate::spsc::Consumer;
use crate::topology::MonitorVerdict;

/// How many events a shard worker moves out of one queue per batch; bounds
/// the worker's scratch buffer while amortizing the acquire/release pair of
/// a queue drain over many events.
pub(crate) const DRAIN_BATCH: usize = 256;

/// The shard owning a `(site, branch)` key, for a monitor split `shards`
/// ways: `hash(site, branch) % shards`. One shard short-circuits to 0
/// without hashing. The hash is the same stable FNV-1a used for the
/// runtime keys ([`hash_words`]), so the mapping is identical across runs,
/// platforms, and engines.
pub fn shard_of(site: u64, branch: u32, shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    (hash_words([site, u64::from(branch)]) % shards as u64) as usize
}

/// Per-shard queue capacity when a total per-thread budget of `total` slots
/// is split `shards` ways. An even split, but never below the smaller of
/// the total and 1024 slots — tiny queues turn routing imbalance straight
/// into drops. One shard keeps the full budget.
pub fn per_shard_capacity(total: usize, shards: usize) -> usize {
    let shards = shards.max(1);
    (total / shards).max(total.min(1024)).max(1)
}

/// A passive sharded monitor: routes each event to the owning shard's
/// [`Monitor`], exactly as the threaded ingest pipeline would, but driven
/// inline by a single caller (the deterministic simulator).
///
/// With one shard this is a plain [`Monitor`] behind a bounds check — the
/// flat topology is the `shards == 1` special case, not a separate code
/// path.
#[derive(Debug)]
pub struct ShardedMonitor {
    monitors: Vec<Monitor>,
}

impl ShardedMonitor {
    /// Creates `shards` monitors (at least one), each expecting reports
    /// from all `nthreads` application threads for the keys it owns.
    pub fn new(checks: CheckTable, nthreads: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let monitors =
            (0..shards).map(|_| Monitor::new(checks.clone(), nthreads)).collect();
        ShardedMonitor { monitors }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.monitors.len()
    }

    /// Routes one event to the shard owning its `(site, branch)` key.
    pub fn process(&mut self, event: BranchEvent) {
        let shard = shard_of(event.site, event.branch, self.monitors.len());
        self.monitors[shard].process(event);
    }

    /// Flushes every shard's partially-reported instances; returns the
    /// total number of violations found so far across all shards.
    pub fn flush(&mut self) -> usize {
        self.monitors.iter_mut().map(|m| m.flush()).sum()
    }

    /// Whether any shard has detected a violation.
    pub fn detected(&self) -> bool {
        self.monitors.iter().any(|m| m.detected())
    }

    /// Violations detected so far across all shards. Cheap (sums one
    /// length per shard); the sim engine's tracer polls it around each
    /// `process` call to attribute a verdict to the event that
    /// triggered it.
    pub fn violations_found(&self) -> usize {
        self.monitors.iter().map(|m| m.violations().len()).sum()
    }

    /// Total events processed across all shards.
    pub fn events_processed(&self) -> u64 {
        self.monitors.iter().map(|m| m.events_processed()).sum()
    }

    /// Total instances awaiting more reporters across all shards.
    pub fn pending_instances(&self) -> usize {
        self.monitors.iter().map(|m| m.pending_instances()).sum()
    }

    /// Merges the shards into one verdict: violations and reports in the
    /// engine's canonical order, counters summed, telemetry merged (plus
    /// per-shard `monitor.shard.<i>.*` metrics when sharded).
    pub fn into_verdict(self) -> MonitorVerdict {
        MonitorVerdict::merge_monitors(self.monitors)
    }
}

/// The sharded monitor backend for the real-threads engine: one OS thread
/// per shard (`bw-shard-<i>`), each draining its own per-producer queues in
/// batches and running a full [`Monitor`] over its slice of the key space.
///
/// Spawn through [`crate::MonitorBuilder`] (topology
/// [`crate::MonitorTopology::Sharded`] — or `Flat`, which is one shard);
/// this type is public so tests can drive pre-filled queues directly.
pub struct ShardedMonitorThread {
    handles: Vec<std::thread::JoinHandle<Monitor>>,
    stop: Arc<AtomicBool>,
    shard_drops: Vec<Arc<AtomicU64>>,
}

impl ShardedMonitorThread {
    /// Spawns one worker per shard. `shard_queues[s]` holds shard `s`'s
    /// consumer ends (one per producing thread, every producer routing by
    /// [`shard_of`]); `shard_drops[s]` is the sink shard `s`'s senders
    /// flush their drop counts into (see
    /// [`crate::EventSender::fanned`]) — folded into shard `s`'s monitor at
    /// [`ShardedMonitorThread::join`].
    ///
    /// # Panics
    ///
    /// Panics if `shard_queues` is empty or `shard_drops` has a different
    /// length.
    pub fn spawn(
        checks: CheckTable,
        nthreads: usize,
        shard_queues: Vec<Vec<Consumer<BranchEvent>>>,
        shard_drops: Vec<Arc<AtomicU64>>,
    ) -> Self {
        assert!(!shard_queues.is_empty(), "at least one shard");
        assert_eq!(shard_queues.len(), shard_drops.len(), "one drop sink per shard");
        let stop = Arc::new(AtomicBool::new(false));
        crate::live::register();
        let handles = shard_queues
            .into_iter()
            .enumerate()
            .map(|(i, queues)| {
                let checks = checks.clone();
                let stop = Arc::clone(&stop);
                std::thread::Builder::new()
                    .name(format!("bw-shard-{i}"))
                    .spawn(move || shard_worker(checks, nthreads, &queues, &stop, i))
                    .expect("spawn shard monitor")
            })
            .collect();
        ShardedMonitorThread { handles, stop, shard_drops }
    }

    /// Signals every shard to finish once its queues are empty, folds each
    /// shard's sender-side drop count into its monitor, and merges the
    /// shards into one deterministic verdict (callers must drop or join
    /// the sending threads first so the drop counts have been flushed).
    ///
    /// # Panics
    ///
    /// Panics if a shard worker panicked.
    pub fn join(self) -> MonitorVerdict {
        self.stop.store(true, Ordering::Release);
        let monitors = self
            .handles
            .into_iter()
            .zip(&self.shard_drops)
            .map(|(handle, drops)| {
                let mut monitor = handle.join().expect("shard monitor panicked");
                monitor.record_dropped(drops.load(Ordering::Acquire));
                monitor
            })
            .collect();
        MonitorVerdict::merge_monitors(monitors)
    }
}

/// One shard's drain loop: batch-pop each producer queue round-robin until
/// stopped and empty, then a final sweep and flush. Feeds the live
/// registry (`live.monitor.shard.<i>.*`) once per sweep so the sampler
/// sees queue depth and throughput mid-run.
fn shard_worker(
    checks: CheckTable,
    nthreads: usize,
    queues: &[Consumer<BranchEvent>],
    stop: &AtomicBool,
    shard: usize,
) -> Monitor {
    let mut monitor = Monitor::new(checks, nthreads);
    let mut batch: Vec<BranchEvent> = Vec::with_capacity(DRAIN_BATCH);
    let live = crate::live::shard_handles(shard);
    // Span tracing (`--trace-spans`): this shard's lane records
    // queue-wait gaps (idle, nothing to drain) and flush-batch spans
    // (one drain sweep that moved events), wall-clock, observability
    // only. Resolved once per worker; `None` costs nothing per sweep.
    let tracer = bw_telemetry::trace_sink();
    let track = format!("shard{shard}");
    let mut idle_since: Option<u64> = None;
    loop {
        let sweep_start = tracer.as_ref().map(|_| bw_telemetry::wall_now_us());
        let mut drained_any = false;
        let mut depth = 0usize;
        let mut processed = 0u64;
        for q in queues {
            let qlen = q.len();
            depth += qlen;
            tm_gauge_max!(monitor.telemetry().queue_high_water, qlen);
            loop {
                let n = q.pop_batch(&mut batch, DRAIN_BATCH);
                if n == 0 {
                    break;
                }
                drained_any = true;
                processed += n as u64;
                for event in batch.drain(..) {
                    monitor.process(event);
                }
            }
        }
        if let Some((events, queue_depth)) = &live {
            if processed > 0 {
                events.add(processed);
            }
            queue_depth.set(depth as u64);
        }
        if let Some(sink) = tracer.as_ref() {
            let start = sweep_start.expect("sweep start stamped when tracing");
            if drained_any {
                // Close the preceding idle gap, then the drain sweep.
                if let Some(idle) = idle_since.take() {
                    bw_telemetry::record_span(
                        sink.as_ref(),
                        TimeDomain::WallUs,
                        &track,
                        "queue_wait",
                        "idle",
                        idle,
                        start.saturating_sub(idle),
                        &[],
                    );
                }
                bw_telemetry::record_span(
                    sink.as_ref(),
                    TimeDomain::WallUs,
                    &track,
                    "flush_batch",
                    "drain",
                    start,
                    bw_telemetry::wall_now_us().saturating_sub(start),
                    &[("events", Value::U64(processed)), ("depth", Value::U64(depth as u64))],
                );
            } else if idle_since.is_none() {
                idle_since = Some(start);
            }
        }
        if !drained_any {
            if stop.load(Ordering::Acquire) {
                break;
            }
            std::thread::yield_now();
        }
    }
    // Producers are done: one final sweep, then flush.
    let final_start = tracer.as_ref().map(|_| bw_telemetry::wall_now_us());
    let mut tail = 0u64;
    for q in queues {
        tm_gauge_max!(monitor.telemetry().queue_high_water, q.len());
        loop {
            let n = q.pop_batch(&mut batch, DRAIN_BATCH);
            if n == 0 {
                break;
            }
            tail += n as u64;
            for event in batch.drain(..) {
                monitor.process(event);
            }
        }
    }
    if let Some((events, queue_depth)) = &live {
        if tail > 0 {
            events.add(tail);
        }
        queue_depth.set(0);
    }
    monitor.flush();
    if let Some(sink) = tracer.as_ref() {
        let start = final_start.expect("final sweep stamped when tracing");
        bw_telemetry::record_span(
            sink.as_ref(),
            TimeDomain::WallUs,
            &track,
            "flush_batch",
            "final flush",
            start,
            bw_telemetry::wall_now_us().saturating_sub(start),
            &[("events", Value::U64(tail))],
        );
    }
    monitor
}

#[cfg(test)]
mod tests {
    use super::*;
    use bw_analysis::CheckKind;

    fn checks() -> CheckTable {
        CheckTable::from_kinds(vec![Some(CheckKind::SharedUniform)])
    }

    fn ev(thread: u32, site: u64, iter: u64, witness: u64, taken: bool) -> BranchEvent {
        BranchEvent { branch: 0, thread, site, iter, witness, taken }
    }

    /// A deterministic mixed stream over many sites: iteration 17 of every
    /// fourth site carries a lying witness, and one trailing two-reporter
    /// instance disagrees on direction (caught at flush).
    fn mixed_stream(nthreads: u32) -> Vec<BranchEvent> {
        let mut events = Vec::new();
        for site in 0..32u64 {
            for iter in 0..20u64 {
                for t in 0..nthreads {
                    let lie = site % 4 == 0 && iter == 17 && t == 1;
                    let witness = if lie { 0xbad } else { iter };
                    events.push(ev(t, site, iter, witness, true));
                }
            }
        }
        events.push(ev(0, 99, 0, 7, true));
        events.push(ev(1, 99, 0, 7, false));
        events
    }

    #[test]
    fn shard_of_partitions_the_key_space() {
        assert_eq!(shard_of(0xdead, 3, 1), 0);
        for shards in [2usize, 4, 8] {
            let mut seen = vec![0u32; shards];
            for site in 0..256u64 {
                for branch in 0..4u32 {
                    let s = shard_of(site, branch, shards);
                    assert!(s < shards);
                    assert_eq!(s, shard_of(site, branch, shards), "stable");
                    seen[s] += 1;
                }
            }
            // FNV spreads 1024 keys well enough that no shard starves.
            assert!(seen.iter().all(|&n| n > 0), "{shards} shards: {seen:?}");
        }
    }

    #[test]
    fn per_shard_capacity_splits_with_a_floor() {
        assert_eq!(per_shard_capacity(1 << 14, 1), 1 << 14);
        assert_eq!(per_shard_capacity(1 << 14, 4), 4096);
        assert_eq!(per_shard_capacity(1 << 14, 32), 1024);
        assert_eq!(per_shard_capacity(4, 2), 4, "small budgets are not split");
        assert_eq!(per_shard_capacity(0, 4), 1);
    }

    /// The headline determinism claim: any shard count produces exactly the
    /// verdict (violations *and* full provenance reports) of the flat
    /// monitor.
    #[test]
    fn any_shard_count_matches_the_flat_verdict() {
        let nthreads = 4u32;
        let events = mixed_stream(nthreads);
        let flat = {
            let mut m = ShardedMonitor::new(checks(), nthreads as usize, 1);
            for &e in &events {
                m.process(e);
            }
            m.flush();
            m.into_verdict()
        };
        assert_eq!(flat.violations.len(), 9, "8 eager + 1 flush-time");
        for shards in [2usize, 3, 4, 8] {
            let mut m = ShardedMonitor::new(checks(), nthreads as usize, shards);
            for &e in &events {
                m.process(e);
            }
            m.flush();
            let sharded = m.into_verdict();
            assert_eq!(sharded.violations, flat.violations, "{shards} shards");
            assert_eq!(
                sharded.violation_reports, flat.violation_reports,
                "{shards} shards: reports must be byte-identical"
            );
            assert_eq!(sharded.events_processed, flat.events_processed);
        }
    }

    /// The threaded pipeline end to end: concurrent producers, batch
    /// drains, merged verdict.
    #[test]
    fn threaded_shards_detect_and_merge() {
        use crate::monitor::EventSender;
        use crate::spsc::spsc_queue;
        let nthreads = 4usize;
        let shards = 4usize;
        let shard_drops: Vec<Arc<AtomicU64>> =
            (0..shards).map(|_| Arc::new(AtomicU64::new(0))).collect();
        let mut shard_queues: Vec<Vec<Consumer<BranchEvent>>> =
            (0..shards).map(|_| Vec::new()).collect();
        let mut senders = Vec::new();
        for _ in 0..nthreads {
            let mut producers = Vec::new();
            for qs in shard_queues.iter_mut() {
                let (p, c) = spsc_queue(1024);
                producers.push(p);
                qs.push(c);
            }
            senders.push(EventSender::fanned(
                producers,
                shard_drops.iter().map(Arc::clone).collect(),
            ));
        }
        let monitor =
            ShardedMonitorThread::spawn(checks(), nthreads, shard_queues, shard_drops);
        let handles: Vec<_> = senders
            .into_iter()
            .enumerate()
            .map(|(t, mut sender)| {
                std::thread::spawn(move || {
                    for site in 0..16u64 {
                        for iter in 0..50u64 {
                            // Thread 2 lies at site 9, iteration 25.
                            let lie = t == 2 && site == 9 && iter == 25;
                            let witness = if lie { 999 } else { iter };
                            sender.send(ev(t as u32, site, iter, witness, true));
                        }
                    }
                    assert_eq!(sender.dropped(), 0);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let verdict = monitor.join();
        assert_eq!(verdict.events_processed, 4 * 16 * 50);
        assert_eq!(verdict.events_dropped, 0);
        assert_eq!(verdict.violations.len(), 1);
        assert_eq!(verdict.violations[0].site, 9);
        assert_eq!(verdict.violations[0].iter, 25);
    }
}
