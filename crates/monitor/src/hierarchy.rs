//! Hierarchical monitoring — the scaling extension sketched in the paper's
//! Section VI: "we can have multiple monitor threads structured in a
//! hierarchical fashion, each of which is assigned to a sub-group of
//! threads".
//!
//! Each *sub-monitor* drains the queues of its thread subgroup and
//! aggregates reports per branch instance, exactly like the flat monitor's
//! front half. Since a similarity check needs every thread's report, the
//! sub-monitor does not check; once its whole subgroup has reported an
//! instance (or at flush), it forwards the aggregated instance — one
//! record instead of `group_size` records — to the *root monitor*, which
//! merges subgroups and applies the usual checks. The root therefore
//! processes `nthreads / fanout` fewer messages, which is the point of the
//! hierarchy.
//!
//! Verdicts are identical to the flat monitor's: aggregation is lossless
//! (every report reaches the root), only batched differently.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use bw_analysis::CheckKind;
use bw_telemetry::{tm_gauge_max, tm_inc, Gauge, TelemetrySnapshot};

use crate::checker::{check_instance, Report};
use crate::event::BranchEvent;
use crate::monitor::{CheckTable, Violation};
use crate::provenance::{window_capacity, FlightRecorder, ViolationReport, WindowEntry};
use crate::spsc::Consumer;
use crate::table::BranchTable;
use crate::telemetry::MonitorTelemetry;

/// An aggregated instance forwarded from a sub-monitor to the root.
#[derive(Clone, Debug)]
pub struct InstanceBatch {
    /// Static branch id.
    pub branch: u32,
    /// Level-1 key (call-path hash).
    pub site: u64,
    /// Level-2 key (loop-iteration hash).
    pub iter: u64,
    /// The subgroup's reports.
    pub reports: Vec<Report>,
}

/// A sub-monitor: aggregates one thread subgroup's events per instance.
#[derive(Debug)]
pub struct SubMonitor {
    group_size: usize,
    table: BranchTable,
    events_processed: u64,
}

impl SubMonitor {
    /// Creates a sub-monitor for a subgroup of `group_size` threads.
    pub fn new(group_size: usize) -> Self {
        SubMonitor { group_size, table: BranchTable::new(), events_processed: 0 }
    }

    /// Processes one event; returns the aggregated instance once the whole
    /// subgroup has reported it.
    pub fn process(&mut self, event: BranchEvent) -> Option<InstanceBatch> {
        self.events_processed += 1;
        let report =
            Report { thread: event.thread, witness: event.witness, taken: event.taken };
        self.table
            .record(event.branch, event.site, event.iter, report, self.group_size)
            .map(|reports| InstanceBatch {
                branch: event.branch,
                site: event.site,
                iter: event.iter,
                reports,
            })
    }

    /// Drains all partially-reported instances (end of the parallel phase).
    pub fn flush(&mut self) -> Vec<InstanceBatch> {
        self.table
            .drain_pending()
            .into_iter()
            .map(|(branch, site, iter, reports)| InstanceBatch { branch, site, iter, reports })
            .collect()
    }

    /// Events this sub-monitor has processed.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }
}

/// The root of the hierarchy: merges subgroup batches and checks.
#[derive(Debug)]
pub struct RootMonitor {
    checks: CheckTable,
    nthreads: usize,
    table: BranchTable,
    violations: Vec<Violation>,
    reports: Vec<ViolationReport>,
    recorder: FlightRecorder,
    batches_processed: u64,
    events_dropped: u64,
    telemetry: MonitorTelemetry,
}

impl RootMonitor {
    /// Creates the root for `nthreads` total application threads.
    pub fn new(checks: CheckTable, nthreads: usize) -> Self {
        RootMonitor {
            checks,
            nthreads,
            table: BranchTable::new(),
            violations: Vec::new(),
            reports: Vec::new(),
            recorder: FlightRecorder::new(window_capacity(nthreads)),
            batches_processed: 0,
            events_dropped: 0,
            telemetry: MonitorTelemetry::new(),
        }
    }

    /// Merges one subgroup batch; checks eagerly when every thread has
    /// reported the instance.
    pub fn process(&mut self, batch: InstanceBatch) {
        self.batches_processed += 1;
        let Some(kind) = self.checks.kind(batch.branch) else { return };
        let mut complete = None;
        let mut site_seq = 0;
        for report in batch.reports {
            // The recorder numbers each site's own report stream, so the
            // root's windows and latencies match the flat monitor's even
            // though its message unit is the batch.
            site_seq = self.recorder.record(
                batch.branch,
                batch.site,
                WindowEntry {
                    thread: report.thread,
                    witness: report.witness,
                    taken: report.taken,
                    iter: batch.iter,
                    seq: 0, // assigned by the recorder
                },
            );
            if let Some(reports) =
                self.table.record(batch.branch, batch.site, batch.iter, report, self.nthreads)
            {
                complete = Some(reports);
            }
        }
        tm_gauge_max!(self.telemetry.pending_high_water, self.table.len());
        if let Some(reports) = complete {
            self.check(kind, batch.branch, batch.site, batch.iter, &reports, site_seq);
        }
    }

    /// Checks the remaining partially-reported instances.
    pub fn flush(&mut self) -> usize {
        let pending = self.table.drain_pending();
        tm_inc!(self.telemetry.flush_calls);
        bw_telemetry::tm_add!(self.telemetry.flush_batch_total, pending.len());
        tm_gauge_max!(self.telemetry.flush_batch_max, pending.len());
        for (branch, site, iter, reports) in pending {
            if let Some(kind) = self.checks.kind(branch) {
                let site_seq = self.recorder.site_seq(branch, site);
                self.check(kind, branch, site, iter, &reports, site_seq);
            }
        }
        self.violations.len()
    }

    #[cfg_attr(not(feature = "provenance"), allow(unused_variables))]
    fn check(
        &mut self,
        kind: CheckKind,
        branch: u32,
        site: u64,
        iter: u64,
        reports: &[Report],
        detected_seq: u64,
    ) {
        if let Err(vk) = check_instance(kind, reports) {
            tm_inc!(self.telemetry.violations_for(kind));
            let violation =
                Violation { branch, site, iter, kind: vk, reporters: reports.len() as u32 };
            self.violations.push(violation);
            #[cfg(feature = "provenance")]
            self.reports.push(crate::provenance::build_report(
                violation,
                kind,
                reports,
                self.recorder.window(branch, site),
                detected_seq,
                self.table.pending_at(branch, site) as u64,
            ));
        }
    }

    /// Violations found so far.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Structured evidence for each violation, in the same order as
    /// [`RootMonitor::violations`]. Empty without the `provenance`
    /// feature.
    pub fn violation_reports(&self) -> &[ViolationReport] {
        &self.reports
    }

    /// Batches received from sub-monitors (the root's message load; compare
    /// with the event count a flat monitor would process).
    pub fn batches_processed(&self) -> u64 {
        self.batches_processed
    }

    /// Sender-side drops folded in at [`HierarchicalMonitorThread::join`].
    pub fn events_dropped(&self) -> u64 {
        self.events_dropped
    }

    /// Folds sender-side drop counts into this root's accounting.
    pub fn record_dropped(&mut self, n: u64) {
        self.events_dropped += n;
    }

    /// The root's live instruments.
    pub fn telemetry(&self) -> &MonitorTelemetry {
        &self.telemetry
    }

    /// Exports everything this root measured under `monitor.*` names.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let mut s = self.telemetry.snapshot();
        s.push_counter("monitor.batches_processed", self.batches_processed);
        s.push_counter("monitor.events_dropped", self.events_dropped);
        s.push_counter("monitor.violations", self.violations.len() as u64);
        s
    }
}

/// A two-level monitor tree running on real threads: one OS thread per
/// sub-monitor plus one root thread. Spawned through
/// [`crate::MonitorBuilder`] with [`crate::MonitorTopology::Hierarchical`].
pub struct HierarchicalMonitorThread {
    handles: Vec<std::thread::JoinHandle<(u64, Vec<InstanceBatch>)>>,
    root_handle: std::thread::JoinHandle<RootMonitor>,
    stop: Arc<AtomicBool>,
    batch_senders_dropped: std::sync::mpsc::Sender<InstanceBatch>,
    queue_gauge: Arc<Gauge>,
    drops: Arc<AtomicU64>,
}

impl HierarchicalMonitorThread {
    /// Spawns sub-monitors over `queues` split into groups of `fanout`
    /// threads each, plus the root, sharing `drops` with the application
    /// threads' [`crate::EventSender`]s; the accumulated count is folded
    /// into the root at [`HierarchicalMonitorThread::join`]. This is the
    /// spawn path [`crate::MonitorBuilder`] uses.
    ///
    /// # Panics
    ///
    /// Panics if `fanout` is zero.
    pub(crate) fn spawn_internal(
        checks: CheckTable,
        nthreads: usize,
        queues: Vec<Consumer<BranchEvent>>,
        fanout: usize,
        drops: Arc<AtomicU64>,
    ) -> Self {
        assert!(fanout > 0, "fanout must be positive");
        let stop = Arc::new(AtomicBool::new(false));
        let queue_gauge = Arc::new(Gauge::new());
        let (batch_tx, batch_rx) = std::sync::mpsc::channel::<InstanceBatch>();

        let mut handles = Vec::new();
        let mut queues = queues;
        let mut group_index = 0;
        while !queues.is_empty() {
            let take = fanout.min(queues.len());
            let group: Vec<Consumer<BranchEvent>> = queues.drain(..take).collect();
            let tx = batch_tx.clone();
            let stop2 = Arc::clone(&stop);
            let gauge = Arc::clone(&queue_gauge);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("bw-submonitor-{group_index}"))
                    .spawn(move || {
                        // The shared gauge keeps the worst queue occupancy
                        // seen by any sub-monitor; `join` folds it into the
                        // root's telemetry. With the feature off the binding
                        // is only kept alive, never read.
                        let _gauge = gauge;
                        let mut sub = SubMonitor::new(group.len());
                        loop {
                            let mut drained = false;
                            for q in &group {
                                tm_gauge_max!(_gauge, q.len());
                                while let Some(event) = q.pop() {
                                    drained = true;
                                    if let Some(batch) = sub.process(event) {
                                        let _ = tx.send(batch);
                                    }
                                }
                            }
                            if !drained {
                                if stop2.load(Ordering::Acquire) {
                                    break;
                                }
                                std::thread::yield_now();
                            }
                        }
                        for q in &group {
                            while let Some(event) = q.pop() {
                                if let Some(batch) = sub.process(event) {
                                    let _ = tx.send(batch);
                                }
                            }
                        }
                        let events = sub.events_processed();
                        (events, sub.flush())
                    })
                    .expect("spawn sub-monitor"),
            );
            group_index += 1;
        }

        let root_handle = std::thread::Builder::new()
            .name("bw-root-monitor".into())
            .spawn(move || {
                let mut root = RootMonitor::new(checks, nthreads);
                // The channel closes when every sub-monitor sender (and the
                // handle kept by the struct) is dropped.
                while let Ok(batch) = batch_rx.recv() {
                    root.process(batch);
                }
                root.flush();
                root
            })
            .expect("spawn root monitor");

        HierarchicalMonitorThread {
            handles,
            root_handle,
            stop,
            batch_senders_dropped: batch_tx,
            queue_gauge,
            drops,
        }
    }

    /// Stops the tree (once queues drain) and returns the root monitor and
    /// the total event count processed by the sub-monitors.
    ///
    /// # Panics
    ///
    /// Panics if a monitor thread panicked.
    pub fn join(self) -> (RootMonitor, u64) {
        self.stop.store(true, Ordering::Release);
        let mut total_events = 0;
        let mut final_batches = Vec::new();
        for handle in self.handles {
            let (events, batches) = handle.join().expect("sub-monitor panicked");
            total_events += events;
            final_batches.extend(batches);
        }
        // Forward the sub-monitors' flush output, then close the channel.
        for batch in final_batches {
            let _ = self.batch_senders_dropped.send(batch);
        }
        drop(self.batch_senders_dropped);
        let mut root = self.root_handle.join().expect("root monitor panicked");
        root.telemetry()
            .queue_high_water
            .record_max(self.queue_gauge.get());
        root.record_dropped(self.drops.load(Ordering::Acquire));
        (root, total_events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::Monitor;
    use bw_analysis::CheckKind;

    fn checks() -> CheckTable {
        CheckTable::from_kinds(vec![Some(CheckKind::SharedUniform)])
    }

    fn ev(thread: u32, iter: u64, witness: u64, taken: bool) -> BranchEvent {
        BranchEvent { branch: 0, thread, site: 0, iter, witness, taken }
    }

    /// Flat and hierarchical monitors agree on a mixed clean/faulty stream.
    #[test]
    fn hierarchy_matches_flat_verdicts() {
        let nthreads = 8;
        let mut events = Vec::new();
        for iter in 0..50u64 {
            for t in 0..nthreads {
                // Instance 17: thread 5 lies about the witness.
                let witness = if iter == 17 && t == 5 { 999 } else { iter };
                events.push(ev(t, iter, witness, true));
            }
        }
        // Instance 50: only threads 2 and 3 report, and disagree on
        // direction (checked at flush).
        events.push(ev(2, 50, 7, true));
        events.push(ev(3, 50, 7, false));

        // The flat side of the differential: a passive monitor fed inline.
        let mut flat = Monitor::new(checks(), nthreads as usize);
        for &e in &events {
            flat.process(e);
        }
        flat.flush();

        let mut subs: Vec<SubMonitor> = (0..2).map(|_| SubMonitor::new(4)).collect();
        let mut root = RootMonitor::new(checks(), nthreads as usize);
        for &e in &events {
            let sub = &mut subs[(e.thread / 4) as usize];
            if let Some(batch) = sub.process(e) {
                root.process(batch);
            }
        }
        for sub in &mut subs {
            for batch in sub.flush() {
                root.process(batch);
            }
        }
        root.flush();

        let mut flat_keys: Vec<_> =
            flat.violations().iter().map(|v| (v.branch, v.iter, v.kind)).collect();
        let mut tree_keys: Vec<_> =
            root.violations().iter().map(|v| (v.branch, v.iter, v.kind)).collect();
        flat_keys.sort();
        tree_keys.sort();
        assert_eq!(flat_keys, tree_keys);
        assert_eq!(root.violations().len(), 2);
    }

    /// The root sees one batch per (instance, subgroup) instead of one
    /// message per event — the scaling claim of Section VI.
    #[test]
    fn root_load_is_reduced_by_fanout() {
        let nthreads = 8u32;
        let mut subs: Vec<SubMonitor> = (0..2).map(|_| SubMonitor::new(4)).collect();
        let mut root = RootMonitor::new(checks(), nthreads as usize);
        let mut events = 0u64;
        for iter in 0..100u64 {
            for t in 0..nthreads {
                events += 1;
                if let Some(batch) = subs[(t / 4) as usize].process(ev(t, iter, 1, true)) {
                    root.process(batch);
                }
            }
        }
        assert_eq!(events, 800);
        assert_eq!(root.batches_processed(), 200); // fanout 4 → 4x reduction
        assert!(root.violations().is_empty());
    }

    /// The threaded tree detects the same injected mismatch end to end.
    #[test]
    fn threaded_hierarchy_detects() {
        use crate::topology::{MonitorBuilder, MonitorTopology};
        let nthreads = 8usize;
        let (senders, handle) = MonitorBuilder::new(checks(), nthreads)
            .topology(MonitorTopology::Hierarchical { fanout: 4 })
            .queue_capacity(1024)
            .spawn();
        let handles: Vec<_> = senders
            .into_iter()
            .enumerate()
            .map(|(t, mut sender)| {
                std::thread::spawn(move || {
                    for iter in 0..200u64 {
                        let taken = !(t == 6 && iter == 123);
                        sender.send(ev(t as u32, iter, 42, taken));
                    }
                    assert_eq!(sender.dropped(), 0);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let verdict = handle.join();
        assert_eq!(verdict.events_processed, 8 * 200);
        assert_eq!(verdict.violations.len(), 1);
        assert_eq!(verdict.violations[0].iter, 123);
    }

    /// Bugfix regression (moved from the integration suite when the
    /// explicit-queue spawns were removed): a sender dropped after
    /// overflowing its queue must not take its drop count with it — the
    /// tree folds sender-side drops into the root at join. Pre-filling
    /// the queue before any monitor exists needs `spawn_internal`, so
    /// this lives in the crate rather than on top of `MonitorBuilder`.
    #[test]
    fn dropped_events_survive_the_sender() {
        use crate::monitor::EventSender;
        use crate::spsc::spsc_queue;
        let drops = Arc::new(AtomicU64::new(0));
        let (p, c) = spsc_queue(4);
        let mut sender = EventSender::with_drop_counter(p, Arc::clone(&drops));
        // No consumer is draining yet: capacity 4, so sends 5..=7 drop.
        for iter in 0..7u64 {
            sender.send(ev(0, iter, 1, true));
        }
        assert_eq!(sender.dropped(), 3);
        drop(sender);

        let tree = HierarchicalMonitorThread::spawn_internal(checks(), 1, vec![c], 1, drops);
        let (root, events) = tree.join();
        assert_eq!(events, 4);
        assert_eq!(root.events_dropped(), 3);
        assert_eq!(root.snapshot().counter("monitor.events_dropped"), Some(3));
    }
}
