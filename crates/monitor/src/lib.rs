//! # bw-monitor — the BLOCKWATCH lock-free runtime monitor
//!
//! The runtime half of BLOCKWATCH (paper Section III-B): application
//! threads append fixed-size [`BranchEvent`]s to per-thread lock-free
//! [Lamport SPSC queues](spsc_queue); an asynchronous monitor drains the
//! queues round-robin, correlates reports across threads in a
//! [two-level hash table](BranchTable) keyed by call-site path and
//! enclosing-loop iterations, and applies the per-category
//! [checks](check_instance) derived from the static analysis. A deviation
//! from the statically inferred similarity is reported as a [`Violation`].
//!
//! Design goals carried over from the paper:
//! 1. **Asynchronous** — senders never wait for the monitor (the queue push
//!    returns immediately; the monitor threads run on their own cores).
//! 2. **Unique branch identifier and fast lookup** — `(static branch id,
//!    call-path hash)` at level 1, loop-iteration hash at level 2.
//! 3. **Lock freedom** — no locks anywhere on the reporting path.
//!
//! Monitors are constructed through one surface: [`MonitorBuilder`], with
//! the ingest shape chosen by [`MonitorTopology`] — `Flat` (the paper's
//! single monitor thread), `Hierarchical` (the Section VI sub-monitor
//! tree), or `Sharded` (N workers each owning a disjoint
//! `(site, branch)` key-space slice, routed by [`shard_of`]). Every
//! topology joins into the same [`MonitorVerdict`] shape, and sharded
//! verdicts are byte-identical to flat ones by construction. (The old
//! per-topology entry points — `MonitorThread`, the explicit-queue
//! `HierarchicalMonitorThread` spawns, `run_flat` — have been removed;
//! drive a passive [`Monitor`] directly where a test needs full control
//! of the event stream.)
//!
//! # Examples
//!
//! ```
//! use bw_monitor::{check_instance, Report};
//! use bw_analysis::CheckKind;
//!
//! // Three threads report a `shared` branch; thread 1's condition data
//! // was corrupted by a fault.
//! let reports = [
//!     Report { thread: 0, witness: 42, taken: true },
//!     Report { thread: 1, witness: 43, taken: true },
//!     Report { thread: 2, witness: 42, taken: true },
//! ];
//! assert!(check_instance(CheckKind::SharedUniform, &reports).is_err());
//! ```

#![warn(missing_docs)]

mod checker;
mod event;
mod hierarchy;
mod live;
mod monitor;
pub mod provenance;
mod shard;
mod spsc;
mod table;
mod telemetry;
mod topology;

pub use checker::{check_instance, Report, ViolationKind};
pub use hierarchy::{HierarchicalMonitorThread, InstanceBatch, RootMonitor, SubMonitor};
pub use event::{hash_words, BranchEvent, KeyHasher};
pub use monitor::{CheckTable, EventSender, Monitor, Violation};
pub use shard::{per_shard_capacity, shard_of, ShardedMonitor, ShardedMonitorThread};
pub use topology::{MonitorBuilder, MonitorHandle, MonitorTopology, MonitorVerdict};
pub use provenance::{
    category_name, kind_name, predicted_pattern, FlightRecorder, ViolationReport, WindowEntry,
    PROVENANCE_ENABLED,
};
pub use spsc::{spsc_queue, Consumer, Producer, QueueFull};
pub use table::{BranchTable, Instance};
pub use telemetry::MonitorTelemetry;
