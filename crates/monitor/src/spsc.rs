//! Lock-free single-producer/single-consumer ring buffer (Lamport, 1983).
//!
//! Each application thread owns the producer end of one queue; the monitor
//! thread owns all consumer ends and drains them round-robin. Insertion
//! happens at the tail and removal at the head, so neither side ever takes
//! a lock — exactly the front-end design of the paper's runtime monitor.
//! Capacity is fixed at construction (the paper sizes the queues "to a
//! sufficiently large value") so the hot path never allocates.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crossbeam::utils::CachePadded;

struct Ring<T> {
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// Next slot the consumer will read. Only the consumer writes this.
    head: CachePadded<AtomicUsize>,
    /// Next slot the producer will write. Only the producer writes this.
    tail: CachePadded<AtomicUsize>,
}

// SAFETY: the ring is shared between exactly one producer and one consumer;
// slot access is ordered by the head/tail release/acquire pairs below.
unsafe impl<T: Send> Send for Ring<T> {}
unsafe impl<T: Send> Sync for Ring<T> {}

/// Producer half of an SPSC queue.
pub struct Producer<T> {
    ring: Arc<Ring<T>>,
}

/// Consumer half of an SPSC queue.
pub struct Consumer<T> {
    ring: Arc<Ring<T>>,
}

impl<T> std::fmt::Debug for Producer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Producer").field("len", &self.len()).finish()
    }
}

impl<T> std::fmt::Debug for Consumer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Consumer").field("len", &self.len()).finish()
    }
}

/// Error returned by [`Producer::push`] when the queue is full.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueueFull<T>(pub T);

/// Creates a queue holding up to `capacity` elements.
///
/// # Panics
///
/// Panics if `capacity` is zero.
pub fn spsc_queue<T>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    assert!(capacity > 0, "queue capacity must be positive");
    // One slot is sacrificed to distinguish full from empty.
    let slots = capacity + 1;
    let buf: Box<[UnsafeCell<MaybeUninit<T>>]> =
        (0..slots).map(|_| UnsafeCell::new(MaybeUninit::uninit())).collect();
    let ring = Arc::new(Ring {
        buf,
        head: CachePadded::new(AtomicUsize::new(0)),
        tail: CachePadded::new(AtomicUsize::new(0)),
    });
    (Producer { ring: Arc::clone(&ring) }, Consumer { ring })
}

impl<T> Producer<T> {
    /// Appends `value` at the back of the queue without locking.
    ///
    /// # Errors
    ///
    /// Returns [`QueueFull`] with the value if the queue has no free slot.
    pub fn push(&self, value: T) -> Result<(), QueueFull<T>> {
        let ring = &*self.ring;
        let tail = ring.tail.load(Ordering::Relaxed);
        let next = (tail + 1) % ring.buf.len();
        if next == ring.head.load(Ordering::Acquire) {
            return Err(QueueFull(value));
        }
        // SAFETY: `tail` is owned by this (single) producer and the slot is
        // free: the consumer's head has moved past it (checked above).
        unsafe {
            (*ring.buf[tail].get()).write(value);
        }
        ring.tail.store(next, Ordering::Release);
        Ok(())
    }

    /// Number of elements currently queued (racy, for diagnostics).
    pub fn len(&self) -> usize {
        queue_len(&self.ring)
    }

    /// Whether the queue looks empty (racy, for diagnostics).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The fixed capacity this queue was created with.
    pub fn capacity(&self) -> usize {
        self.ring.buf.len() - 1
    }
}

impl<T> Consumer<T> {
    /// Removes the element at the front of the queue, if any.
    pub fn pop(&self) -> Option<T> {
        let ring = &*self.ring;
        let head = ring.head.load(Ordering::Relaxed);
        if head == ring.tail.load(Ordering::Acquire) {
            return None;
        }
        // SAFETY: the slot at `head` was fully written before the producer
        // released `tail` past it, and only this consumer reads it.
        let value = unsafe { (*ring.buf[head].get()).assume_init_read() };
        ring.head.store((head + 1) % ring.buf.len(), Ordering::Release);
        Some(value)
    }

    /// Moves up to `max` elements from the front of the queue into `out`,
    /// returning how many were moved.
    ///
    /// This amortizes the cross-core synchronization of [`Consumer::pop`]:
    /// one acquire load of the producer's tail and one release store of the
    /// head cover the whole batch, instead of one pair per element. The
    /// sharded monitor drains its queues through this path.
    pub fn pop_batch(&self, out: &mut Vec<T>, max: usize) -> usize {
        let ring = &*self.ring;
        let slots = ring.buf.len();
        let head = ring.head.load(Ordering::Relaxed);
        let tail = ring.tail.load(Ordering::Acquire);
        let available = (tail + slots - head) % slots;
        let take = available.min(max);
        if take == 0 {
            return 0;
        }
        out.reserve(take);
        for i in 0..take {
            // SAFETY: each slot in `head..head+take` was fully written before
            // the producer released `tail` past it (acquired above), and only
            // this consumer reads slots behind `tail`.
            let value = unsafe { (*ring.buf[(head + i) % slots].get()).assume_init_read() };
            out.push(value);
        }
        ring.head.store((head + take) % slots, Ordering::Release);
        take
    }

    /// Number of elements currently queued (racy, for diagnostics).
    pub fn len(&self) -> usize {
        queue_len(&self.ring)
    }

    /// Whether the queue looks empty (racy, for diagnostics).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The fixed capacity this queue was created with.
    pub fn capacity(&self) -> usize {
        self.ring.buf.len() - 1
    }
}

fn queue_len<T>(ring: &Ring<T>) -> usize {
    let head = ring.head.load(Ordering::Acquire);
    let tail = ring.tail.load(Ordering::Acquire);
    (tail + ring.buf.len() - head) % ring.buf.len()
}

impl<T> Drop for Consumer<T> {
    fn drop(&mut self) {
        // Drain remaining initialized slots so their destructors run.
        while self.pop().is_some() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let (p, c) = spsc_queue(8);
        for i in 0..5 {
            p.push(i).unwrap();
        }
        for i in 0..5 {
            assert_eq!(c.pop(), Some(i));
        }
        assert_eq!(c.pop(), None);
    }

    #[test]
    fn full_queue_rejects() {
        let (p, c) = spsc_queue(2);
        p.push(1).unwrap();
        p.push(2).unwrap();
        assert_eq!(p.push(3), Err(QueueFull(3)));
        assert_eq!(c.pop(), Some(1));
        p.push(3).unwrap();
        assert_eq!(c.pop(), Some(2));
        assert_eq!(c.pop(), Some(3));
    }

    #[test]
    fn wraparound() {
        let (p, c) = spsc_queue(3);
        for round in 0..10 {
            p.push(round * 2).unwrap();
            p.push(round * 2 + 1).unwrap();
            assert_eq!(c.pop(), Some(round * 2));
            assert_eq!(c.pop(), Some(round * 2 + 1));
        }
        assert!(c.is_empty());
    }

    #[test]
    fn len_tracks_occupancy() {
        let (p, c) = spsc_queue(4);
        assert_eq!(p.len(), 0);
        p.push(1).unwrap();
        p.push(2).unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(c.len(), 2);
        c.pop();
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn cross_thread_stress() {
        let (p, c) = spsc_queue(64);
        const N: u64 = 100_000;
        let producer = std::thread::spawn(move || {
            for i in 0..N {
                let mut v = i;
                loop {
                    match p.push(v) {
                        Ok(()) => break,
                        Err(QueueFull(back)) => {
                            v = back;
                            std::hint::spin_loop();
                        }
                    }
                }
            }
        });
        let mut expected = 0;
        while expected < N {
            if let Some(v) = c.pop() {
                assert_eq!(v, expected);
                expected += 1;
            } else {
                std::hint::spin_loop();
            }
        }
        producer.join().unwrap();
        assert_eq!(c.pop(), None);
    }

    #[test]
    fn pop_batch_preserves_fifo_order_across_wraparound() {
        let (p, c) = spsc_queue(4);
        let mut out = Vec::new();
        assert_eq!(c.pop_batch(&mut out, 16), 0);
        let mut next_in = 0u64;
        let mut next_out = 0u64;
        for _ in 0..10 {
            while p.push(next_in).is_ok() {
                next_in += 1;
            }
            let n = c.pop_batch(&mut out, 3);
            assert!(n <= 3);
            for v in out.drain(..) {
                assert_eq!(v, next_out);
                next_out += 1;
            }
        }
        // Drain the rest in one over-sized batch.
        let n = c.pop_batch(&mut out, usize::MAX);
        assert_eq!(n, out.len());
        for v in out.drain(..) {
            assert_eq!(v, next_out);
            next_out += 1;
        }
        assert_eq!(next_out, next_in);
        assert!(c.is_empty());
    }

    #[test]
    fn pop_batch_cross_thread_stress() {
        let (p, c) = spsc_queue(64);
        const N: u64 = 100_000;
        let producer = std::thread::spawn(move || {
            for i in 0..N {
                let mut v = i;
                loop {
                    match p.push(v) {
                        Ok(()) => break,
                        Err(QueueFull(back)) => {
                            v = back;
                            std::hint::spin_loop();
                        }
                    }
                }
            }
        });
        let mut expected = 0;
        let mut batch = Vec::new();
        while expected < N {
            if c.pop_batch(&mut batch, 32) > 0 {
                for v in batch.drain(..) {
                    assert_eq!(v, expected);
                    expected += 1;
                }
            } else {
                std::hint::spin_loop();
            }
        }
        producer.join().unwrap();
        assert_eq!(c.pop(), None);
    }

    #[test]
    fn drops_remaining_elements() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        #[derive(Debug)]
        struct Counted;
        impl Drop for Counted {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let (p, c) = spsc_queue(8);
        p.push(Counted).unwrap();
        p.push(Counted).unwrap();
        drop(c);
        drop(p);
        assert_eq!(DROPS.load(Ordering::SeqCst), 2);
    }
}
