//! Monitor-side telemetry: queue pressure, flush batching, and
//! per-check-kind violation tallies.
//!
//! The instruments live here as a plain struct of relaxed atomics so the
//! monitor can update them from its own thread while diagnostics read
//! them from outside. Updates on hot paths go through the `tm_*` macros
//! and vanish when the `telemetry` feature is off; the struct itself
//! always compiles so `Monitor`'s API does not change shape.

use bw_analysis::CheckKind;
use bw_telemetry::{Counter, Gauge, TelemetrySnapshot};

/// Instruments shared by the flat monitor and the hierarchy root.
#[derive(Debug, Default)]
pub struct MonitorTelemetry {
    /// Highest SPSC queue occupancy observed before a drain pass.
    pub queue_high_water: Gauge,
    /// Number of `flush` calls (end-of-phase sweeps).
    pub flush_calls: Counter,
    /// Total partially-reported instances drained across all flushes.
    pub flush_batch_total: Counter,
    /// Largest single flush batch.
    pub flush_batch_max: Gauge,
    /// High-water mark of the pending-instance table.
    pub pending_high_water: Gauge,
    /// Violations found on `SharedUniform` branches.
    pub violations_shared_uniform: Counter,
    /// Violations found on `ThreadIdPredicate` branches.
    pub violations_tid_predicate: Counter,
    /// Violations found on `GroupByWitness` branches.
    pub violations_group_witness: Counter,
}

impl MonitorTelemetry {
    /// All-zero instruments.
    pub const fn new() -> Self {
        MonitorTelemetry {
            queue_high_water: Gauge::new(),
            flush_calls: Counter::new(),
            flush_batch_total: Counter::new(),
            flush_batch_max: Gauge::new(),
            pending_high_water: Gauge::new(),
            violations_shared_uniform: Counter::new(),
            violations_tid_predicate: Counter::new(),
            violations_group_witness: Counter::new(),
        }
    }

    /// The tally counter for a branch's check category.
    pub fn violations_for(&self, kind: CheckKind) -> &Counter {
        match kind {
            CheckKind::SharedUniform => &self.violations_shared_uniform,
            CheckKind::ThreadIdPredicate(_) => &self.violations_tid_predicate,
            CheckKind::GroupByWitness => &self.violations_group_witness,
        }
    }

    /// Exports the instruments under `monitor.*` names.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let mut s = TelemetrySnapshot::new();
        s.push_gauge("monitor.queue_high_water", self.queue_high_water.get());
        s.push_counter("monitor.flush.calls", self.flush_calls.get());
        s.push_counter("monitor.flush.batch_total", self.flush_batch_total.get());
        s.push_gauge("monitor.flush.batch_max", self.flush_batch_max.get());
        s.push_gauge("monitor.pending_high_water", self.pending_high_water.get());
        s.push_counter(
            "monitor.violations.shared_uniform",
            self.violations_shared_uniform.get(),
        );
        s.push_counter(
            "monitor.violations.tid_predicate",
            self.violations_tid_predicate.get(),
        );
        s.push_counter(
            "monitor.violations.group_witness",
            self.violations_group_witness.get(),
        );
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bw_analysis::TidCheck;

    #[test]
    fn violation_tallies_are_keyed_by_check_kind() {
        let t = MonitorTelemetry::new();
        t.violations_for(CheckKind::SharedUniform).inc();
        t.violations_for(CheckKind::ThreadIdPredicate(TidCheck::AtMostOneTaken))
            .add(2);
        t.violations_for(CheckKind::GroupByWitness).add(3);
        assert_eq!(t.violations_shared_uniform.get(), 1);
        assert_eq!(t.violations_tid_predicate.get(), 2);
        assert_eq!(t.violations_group_witness.get(), 3);
    }

    #[test]
    fn snapshot_carries_all_instruments() {
        let t = MonitorTelemetry::new();
        t.queue_high_water.record_max(17);
        t.flush_calls.inc();
        let s = t.snapshot();
        assert_eq!(s.gauge("monitor.queue_high_water"), Some(17));
        assert_eq!(s.counter("monitor.flush.calls"), Some(1));
        assert_eq!(s.counter("monitor.violations.group_witness"), Some(0));
    }
}
