//! The monitor's back-end: a two-level hash table correlating branch
//! reports across threads.
//!
//! Level 1 is keyed by `(static branch id, call-site path)` — the paper's
//! "function's call site ID and static branch identifier". Level 2 is keyed
//! by the enclosing-loop iteration hash. Each level-2 entry accumulates one
//! report per thread; when all `nthreads` threads have reported, the entry
//! is checked eagerly and removed. Entries with fewer reporters are checked
//! at [`BranchTable::drain_pending`] (end of the parallel phase), since the
//! monitor cannot know statically how many threads execute a branch that is
//! itself under divergent control.

use std::collections::HashMap;

use crate::checker::Report;

/// Accumulated reports for one runtime instance of one branch.
#[derive(Clone, Debug, Default)]
pub struct Instance {
    /// One report per thread (at most).
    pub reports: Vec<Report>,
}

/// The two-level table.
#[derive(Debug, Default)]
pub struct BranchTable {
    level1: HashMap<(u32, u64), HashMap<u64, Instance>>,
    len: usize,
}

impl BranchTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a report; returns the instance's reports if this was the
    /// `nthreads`-th reporter (the instance is then removed — time to check
    /// it eagerly).
    pub fn record(
        &mut self,
        branch: u32,
        site: u64,
        iter: u64,
        report: Report,
        nthreads: usize,
    ) -> Option<Vec<Report>> {
        let level2 = self.level1.entry((branch, site)).or_default();
        let instance = level2.entry(iter).or_default();
        if instance.reports.is_empty() {
            self.len += 1;
        }
        // A thread reporting the same instance twice would indicate a key
        // collision; keep the first report (collisions are ~2^-64).
        if instance.reports.iter().any(|r| r.thread == report.thread) {
            return None;
        }
        instance.reports.push(report);
        if instance.reports.len() >= nthreads {
            let full = level2.remove(&iter).expect("entry exists");
            self.len -= 1;
            Some(full.reports)
        } else {
            None
        }
    }

    /// Removes and returns every pending (partially reported) instance:
    /// `(branch, site, iter, reports)`.
    pub fn drain_pending(&mut self) -> Vec<(u32, u64, u64, Vec<Report>)> {
        let mut out = Vec::with_capacity(self.len);
        for ((branch, site), level2) in self.level1.drain() {
            for (iter, instance) in level2 {
                out.push((branch, site, iter, instance.reports));
            }
        }
        self.len = 0;
        // Deterministic order for reproducible violation reports.
        out.sort_by_key(|(b, s, i, _)| (*b, *s, *i));
        out
    }

    /// Number of pending instances.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Number of pending instances at one `(branch, site)` key — the
    /// site-local backlog a [`crate::ViolationReport`] records as its
    /// `pending_depth`. Unlike [`BranchTable::len`], this is invariant
    /// under sharding the key space across monitors.
    pub fn pending_at(&self, branch: u32, site: u64) -> usize {
        self.level1.get(&(branch, site)).map_or(0, |level2| level2.len())
    }

    /// Whether no instances are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(thread: u32, taken: bool) -> Report {
        Report { thread, witness: 0, taken }
    }

    #[test]
    fn completes_at_nthreads() {
        let mut t = BranchTable::new();
        assert_eq!(t.record(1, 0, 0, r(0, true), 3), None);
        assert_eq!(t.record(1, 0, 0, r(1, true), 3), None);
        let full = t.record(1, 0, 0, r(2, true), 3).expect("complete");
        assert_eq!(full.len(), 3);
        assert!(t.is_empty());
    }

    #[test]
    fn distinct_instances_do_not_mix() {
        let mut t = BranchTable::new();
        t.record(1, 0, 0, r(0, true), 2);
        t.record(1, 0, 1, r(1, true), 2); // different loop iteration
        t.record(2, 0, 0, r(1, true), 2); // different branch
        t.record(1, 7, 0, r(1, true), 2); // different call path
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn pending_at_counts_one_site_only() {
        let mut t = BranchTable::new();
        t.record(1, 0, 0, r(0, true), 2);
        t.record(1, 0, 1, r(0, true), 2);
        t.record(1, 7, 0, r(0, true), 2);
        assert_eq!(t.pending_at(1, 0), 2);
        assert_eq!(t.pending_at(1, 7), 1);
        assert_eq!(t.pending_at(9, 9), 0);
        // Completing an instance removes it from the site's backlog.
        t.record(1, 0, 0, r(1, true), 2);
        assert_eq!(t.pending_at(1, 0), 1);
    }

    #[test]
    fn duplicate_thread_report_is_ignored() {
        let mut t = BranchTable::new();
        assert_eq!(t.record(1, 0, 0, r(0, true), 2), None);
        assert_eq!(t.record(1, 0, 0, r(0, false), 2), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn drain_returns_sorted_pending() {
        let mut t = BranchTable::new();
        t.record(2, 0, 5, r(0, true), 4);
        t.record(1, 0, 3, r(0, true), 4);
        t.record(1, 0, 1, r(1, false), 4);
        let pending = t.drain_pending();
        let keys: Vec<(u32, u64, u64)> =
            pending.iter().map(|(b, s, i, _)| (*b, *s, *i)).collect();
        assert_eq!(keys, vec![(1, 0, 1), (1, 0, 3), (2, 0, 5)]);
        assert!(t.is_empty());
    }
}
