//! Branch events: the fixed-size records threads send to the monitor.

use serde::{Deserialize, Serialize};

/// The information one `sendBranchCondition`/`sendBranchAddr` pair of the
/// paper carries, folded into a single fixed-size record: the static branch
/// identifier, the runtime instance identifiers (call-site path and
/// enclosing-loop iterations, pre-hashed by the sender), the condition
/// witness, and the branch outcome.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BranchEvent {
    /// Static branch id (index into the check plan).
    pub branch: u32,
    /// Reporting thread.
    pub thread: u32,
    /// Level-1 runtime key: hash of the call-site path from the SPMD entry
    /// (the paper's "function's call site ID").
    pub site: u64,
    /// Level-2 runtime key: hash of the iteration numbers of all enclosing
    /// loops (≤ 6, the paper's cutoff) plus the barrier epoch.
    pub iter: u64,
    /// Condition witness: hash of the non-constant condition operands.
    pub witness: u64,
    /// Whether the branch was taken.
    pub taken: bool,
}

/// A stable 64-bit hash combiner (FNV-1a over 8-byte words) used for the
/// runtime keys. Deterministic across runs and platforms so golden runs and
/// fault-injection runs agree.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KeyHasher(u64);

impl KeyHasher {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh hasher.
    pub fn new() -> Self {
        KeyHasher(Self::OFFSET)
    }

    /// Mixes one 64-bit word.
    pub fn write(&mut self, word: u64) {
        for byte in word.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// Mixes and returns a new hasher (for functional chaining).
    pub fn with(mut self, word: u64) -> Self {
        self.write(word);
        self
    }

    /// The accumulated hash.
    pub fn finish(self) -> u64 {
        self.0
    }
}

impl Default for KeyHasher {
    fn default() -> Self {
        Self::new()
    }
}

/// Hashes a sequence of words in one call.
pub fn hash_words(words: impl IntoIterator<Item = u64>) -> u64 {
    let mut h = KeyHasher::new();
    for w in words {
        h.write(w);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_deterministic() {
        assert_eq!(hash_words([1, 2, 3]), hash_words([1, 2, 3]));
    }

    #[test]
    fn hash_is_order_sensitive() {
        assert_ne!(hash_words([1, 2]), hash_words([2, 1]));
    }

    #[test]
    fn hash_distinguishes_empty_prefixes() {
        assert_ne!(hash_words([0]), hash_words([]));
        assert_ne!(hash_words([0, 0]), hash_words([0]));
    }

    #[test]
    fn chaining_matches_sequential_writes() {
        let a = KeyHasher::new().with(7).with(9).finish();
        let mut h = KeyHasher::new();
        h.write(7);
        h.write(9);
        assert_eq!(a, h.finish());
    }

    #[test]
    fn event_is_small() {
        // The hot path copies events by value into the ring buffer; keep
        // them compact (the paper uses fixed-size records too).
        assert!(std::mem::size_of::<BranchEvent>() <= 40);
    }
}
