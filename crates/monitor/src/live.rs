//! Live (process-cumulative) monitor metrics for the global registry.
//!
//! The per-run [`crate::MonitorVerdict`] numbers only exist once a run
//! finishes; this module is what the sampler and the `/metrics` endpoint
//! see *while* monitors are running. Everything here is additive across
//! runs (Prometheus counter semantics) and flows only into the global
//! [`MetricRegistry`] — never into a verdict — so watching a run cannot
//! change its results.
//!
//! Cost: the dropped-event counter sits on the sender's overflow path
//! (already cold — the queue was full and the spin budget exhausted), and
//! the per-shard handles are resolved once per shard-worker spawn, then
//! updated with relaxed atomics per drain sweep.

use std::sync::{Arc, OnceLock};

use bw_telemetry::{Counter, Gauge, MetricRegistry, MetricSource, TelemetrySnapshot};

/// Events dropped by any [`crate::EventSender`] in this process, counted
/// the moment they are dropped (the per-run tally only surfaces at join).
static EVENTS_DROPPED: Counter = Counter::new();

struct MonitorLiveSource;

impl MetricSource for MonitorLiveSource {
    fn collect(&self) -> TelemetrySnapshot {
        let mut s = TelemetrySnapshot::new();
        s.push_counter("live.monitor.events_dropped", EVENTS_DROPPED.get());
        s
    }
}

/// Registers the monitor's live metrics into the global registry.
/// Idempotent; a no-op without the `telemetry` feature.
pub(crate) fn register() {
    static ONCE: OnceLock<()> = OnceLock::new();
    ONCE.get_or_init(|| {
        if bw_telemetry::ENABLED {
            MetricRegistry::global().register_source("monitor.live", Arc::new(MonitorLiveSource));
        }
    });
}

/// Counts one sender-side dropped event (cold path: queue overflow).
#[inline]
pub(crate) fn record_dropped_event() {
    bw_telemetry::tm_inc!(EVENTS_DROPPED);
}

/// The live handles a shard worker updates per drain sweep: cumulative
/// events processed and current total queue depth for shard `shard`.
/// `None` without the `telemetry` feature.
pub(crate) fn shard_handles(shard: usize) -> Option<(Arc<Counter>, Arc<Gauge>)> {
    if !bw_telemetry::ENABLED {
        return None;
    }
    let registry = MetricRegistry::global();
    Some((
        registry.counter(&format!("live.monitor.shard.{shard}.events_processed")),
        registry.gauge(&format!("live.monitor.shard.{shard}.queue_depth")),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_counter_feeds_the_global_registry() {
        register();
        let before = EVENTS_DROPPED.get();
        record_dropped_event();
        if bw_telemetry::ENABLED {
            assert_eq!(EVENTS_DROPPED.get(), before + 1);
            let snap = MetricRegistry::global().snapshot();
            assert!(snap.counter("live.monitor.events_dropped").unwrap_or(0) > before);
        } else {
            assert_eq!(EVENTS_DROPPED.get(), 0);
        }
    }

    #[test]
    fn shard_handles_match_the_feature() {
        assert_eq!(shard_handles(0).is_some(), bw_telemetry::ENABLED);
    }
}
