//! The monitor proper: drains the per-thread queues round-robin, correlates
//! reports in the two-level table, and applies the per-category checks.
//!
//! The monitor is a passive object ([`Monitor::poll`] / [`Monitor::flush`])
//! so that the deterministic simulator can drive it inline; for the
//! real-threads engine, [`crate::MonitorBuilder`] wraps it in dedicated OS
//! threads that poll until all producers disconnect, exactly like the
//! paper's asynchronous monitor thread.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bw_analysis::{CheckKind, CheckPlan};
use bw_telemetry::{tm_add, tm_gauge_max, tm_inc, TelemetrySnapshot};
use serde::{Deserialize, Serialize};

use crate::checker::{check_instance, Report, ViolationKind};
use crate::event::BranchEvent;
use crate::provenance::{window_capacity, FlightRecorder, ViolationReport, WindowEntry};
use crate::spsc::{Producer, QueueFull};
use crate::table::BranchTable;
use crate::telemetry::MonitorTelemetry;

/// A detected similarity violation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Violation {
    /// The offending branch.
    pub branch: u32,
    /// Level-1 runtime key (call-site path hash).
    pub site: u64,
    /// Level-2 runtime key (loop-iteration hash).
    pub iter: u64,
    /// What failed.
    pub kind: ViolationKind,
    /// How many threads had reported the instance when it was checked.
    pub reporters: u32,
}

impl Violation {
    /// A one-line human-readable rendering, used by diagnostic CLIs
    /// (`bw fuzz`) when reporting a detection.
    pub fn describe(&self) -> String {
        let what = match self.kind {
            ViolationKind::WitnessMismatch => {
                "threads disagreed on the condition witness"
            }
            ViolationKind::DirectionMismatch => {
                "threads took different directions on a shared-category branch"
            }
            ViolationKind::GroupMismatch => {
                "threads with equal witnesses took different directions"
            }
            ViolationKind::TidPredicate => {
                "branch outcomes violated the thread-ID predicate"
            }
        };
        format!(
            "branch br{}: {what} (site {:#x}, iteration {:#x}, {} reporters)",
            self.branch, self.site, self.iter, self.reporters
        )
    }
}

/// How the monitor checks each branch: a compact per-branch table derived
/// from the [`CheckPlan`].
#[derive(Clone, Debug, Default)]
pub struct CheckTable {
    kinds: Vec<Option<CheckKind>>,
}

impl CheckTable {
    /// Builds a table directly from per-branch kinds (tests, custom plans).
    pub fn from_kinds(kinds: Vec<Option<CheckKind>>) -> Self {
        CheckTable { kinds }
    }

    /// Extracts the per-branch check kinds from a plan.
    pub fn from_plan(plan: &CheckPlan) -> Self {
        CheckTable {
            kinds: plan
                .decisions
                .iter()
                .map(|d| d.as_ref().ok().map(|c| c.kind))
                .collect(),
        }
    }

    /// The check kind for a branch, if instrumented.
    pub fn kind(&self, branch: u32) -> Option<CheckKind> {
        self.kinds.get(branch as usize).copied().flatten()
    }

    /// Number of branches covered (instrumented or not).
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }
}

/// The passive monitor object.
#[derive(Debug)]
pub struct Monitor {
    checks: CheckTable,
    nthreads: usize,
    table: BranchTable,
    violations: Vec<Violation>,
    reports: Vec<ViolationReport>,
    recorder: FlightRecorder,
    events_processed: u64,
    events_dropped: u64,
    telemetry: MonitorTelemetry,
}

impl Monitor {
    /// Creates a monitor for `nthreads` application threads checking
    /// according to `checks`.
    pub fn new(checks: CheckTable, nthreads: usize) -> Self {
        Monitor {
            checks,
            nthreads,
            table: BranchTable::new(),
            violations: Vec::new(),
            reports: Vec::new(),
            recorder: FlightRecorder::new(window_capacity(nthreads)),
            events_processed: 0,
            events_dropped: 0,
            telemetry: MonitorTelemetry::new(),
        }
    }

    /// Processes one event.
    pub fn process(&mut self, event: BranchEvent) {
        self.events_processed += 1;
        let Some(kind) = self.checks.kind(event.branch) else {
            return; // not instrumented; defensive
        };
        let report =
            Report { thread: event.thread, witness: event.witness, taken: event.taken };
        // Flight recorder (provenance feature; compiles out otherwise):
        // one ring write per instrumented event. The recorder numbers the
        // site's own report stream, so the seq it returns is the same no
        // matter which shard (or topology) this monitor is.
        let site_seq = self.recorder.record(
            event.branch,
            event.site,
            WindowEntry {
                thread: event.thread,
                witness: event.witness,
                taken: event.taken,
                iter: event.iter,
                seq: 0, // assigned by the recorder
            },
        );
        if let Some(reports) =
            self.table.record(event.branch, event.site, event.iter, report, self.nthreads)
        {
            self.check(kind, event.branch, event.site, event.iter, &reports, site_seq);
        }
        tm_gauge_max!(self.telemetry.pending_high_water, self.table.len());
    }

    /// Checks every instance that has not reached `nthreads` reporters
    /// (executed at the end of the parallel phase). Returns the total number
    /// of violations found so far.
    pub fn flush(&mut self) -> usize {
        let pending = self.table.drain_pending();
        tm_inc!(self.telemetry.flush_calls);
        tm_add!(self.telemetry.flush_batch_total, pending.len());
        tm_gauge_max!(self.telemetry.flush_batch_max, pending.len());
        for (branch, site, iter, reports) in pending {
            if let Some(kind) = self.checks.kind(branch) {
                let site_seq = self.recorder.site_seq(branch, site);
                self.check(kind, branch, site, iter, &reports, site_seq);
            }
        }
        self.violations.len()
    }

    #[cfg_attr(not(feature = "provenance"), allow(unused_variables))]
    fn check(
        &mut self,
        kind: CheckKind,
        branch: u32,
        site: u64,
        iter: u64,
        reports: &[Report],
        detected_seq: u64,
    ) {
        if let Err(vk) = check_instance(kind, reports) {
            tm_inc!(self.telemetry.violations_for(kind));
            let violation = Violation {
                branch,
                site,
                iter,
                kind: vk,
                reporters: reports.len() as u32,
            };
            self.violations.push(violation);
            #[cfg(feature = "provenance")]
            self.reports.push(crate::provenance::build_report(
                violation,
                kind,
                reports,
                self.recorder.window(branch, site),
                detected_seq,
                self.table.pending_at(branch, site) as u64,
            ));
        }
    }

    /// The violations detected so far.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Structured evidence for each violation, in the same order as
    /// [`Monitor::violations`]. Empty without the `provenance` feature.
    pub fn violation_reports(&self) -> &[ViolationReport] {
        &self.reports
    }

    /// The per-site flight recorder (empty shell without the `provenance`
    /// feature).
    pub fn flight_recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// Whether any violation has been detected.
    pub fn detected(&self) -> bool {
        !self.violations.is_empty()
    }

    /// Total number of events processed.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Number of instances awaiting more reporters.
    pub fn pending_instances(&self) -> usize {
        self.table.len()
    }

    /// Events the application threads had to drop because this monitor
    /// could not keep up (aggregated from every [`EventSender`] when the
    /// monitor is driven through [`MonitorThread`]).
    ///
    /// A nonzero value means verdicts may have missed violations — the
    /// paper's zero-false-negative claim only holds when this is zero.
    pub fn events_dropped(&self) -> u64 {
        self.events_dropped
    }

    /// Folds sender-side drop counts into this monitor's accounting.
    pub fn record_dropped(&mut self, n: u64) {
        self.events_dropped += n;
    }

    /// The monitor's live instruments.
    pub fn telemetry(&self) -> &MonitorTelemetry {
        &self.telemetry
    }

    /// Decomposes the monitor into its owned verdict lists (used by the
    /// topology layer when merging shards).
    pub(crate) fn into_results(self) -> (Vec<Violation>, Vec<ViolationReport>) {
        (self.violations, self.reports)
    }

    /// Exports everything this monitor measured under `monitor.*` names.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let mut s = self.telemetry.snapshot();
        s.push_counter("monitor.events_processed", self.events_processed);
        s.push_counter("monitor.events_dropped", self.events_dropped);
        s.push_counter("monitor.violations", self.violations.len() as u64);
        s.push_gauge("monitor.pending_instances", self.table.len() as u64);
        s
    }
}

/// A sending endpoint one application thread uses. Pushes spin briefly when
/// the queue is full (the paper sizes queues to make this rare) and count
/// the overflow events that had to be dropped after the spin budget.
///
/// A sender owns one producer per monitor shard and routes each event to
/// the shard owning its `(site, branch)` key via [`crate::shard_of`]; the
/// common single-shard case skips the hash entirely.
#[derive(Debug)]
pub struct EventSender {
    /// One queue producer per monitor shard, indexed by shard id.
    producers: Vec<Producer<BranchEvent>>,
    sent: u64,
    /// Per-shard drop counts, aligned with `producers`.
    dropped: Vec<u64>,
    spin_budget: u32,
    /// Shared per-shard sinks the local drop counts are flushed into when
    /// the sender goes away, so the totals survive the sender's lifetime
    /// (see [`MonitorThread::spawn_with_drop_counter`]). Empty when no one
    /// is counting; otherwise aligned with `producers`.
    drop_sinks: Vec<Arc<AtomicU64>>,
}

impl EventSender {
    /// Wraps a single queue producer (unsharded ingest, no drop sink).
    pub fn new(producer: Producer<BranchEvent>) -> Self {
        Self::fanned(vec![producer], Vec::new())
    }

    /// Wraps a single queue producer and flushes this sender's drop count
    /// into `sink` when the sender is dropped. Before this existed, drop
    /// counts died with their sender — a monitor that fell behind looked
    /// indistinguishable from one that kept up.
    pub fn with_drop_counter(producer: Producer<BranchEvent>, sink: Arc<AtomicU64>) -> Self {
        Self::fanned(vec![producer], vec![sink])
    }

    /// Wraps one producer per monitor shard (indexed by shard id), with an
    /// optional matching vector of per-shard drop sinks.
    ///
    /// # Panics
    ///
    /// Panics if `producers` is empty, or if `drop_sinks` is non-empty but
    /// not the same length as `producers`.
    pub fn fanned(producers: Vec<Producer<BranchEvent>>, drop_sinks: Vec<Arc<AtomicU64>>) -> Self {
        assert!(!producers.is_empty(), "sender needs at least one shard producer");
        assert!(
            drop_sinks.is_empty() || drop_sinks.len() == producers.len(),
            "drop sinks must match shard producers"
        );
        let dropped = vec![0; producers.len()];
        EventSender { producers, sent: 0, dropped, spin_budget: 1024, drop_sinks }
    }

    /// Sends an event to the shard owning its key, spinning briefly if that
    /// shard's queue is full; drops the event (and counts it against the
    /// shard) if the monitor cannot keep up.
    pub fn send(&mut self, event: BranchEvent) {
        let shard = if self.producers.len() == 1 {
            0
        } else {
            crate::shard::shard_of(event.site, event.branch, self.producers.len())
        };
        let mut ev = event;
        for _ in 0..self.spin_budget {
            match self.producers[shard].push(ev) {
                Ok(()) => {
                    self.sent += 1;
                    return;
                }
                Err(QueueFull(back)) => {
                    ev = back;
                    std::hint::spin_loop();
                }
            }
        }
        self.dropped[shard] += 1;
        // Cold path: surface the drop immediately in the live registry so
        // the sampler can warn mid-run, not just at join.
        crate::live::record_dropped_event();
    }

    /// Events successfully enqueued by this sender (all shards).
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Events dropped due to sustained queue overflow (all shards).
    pub fn dropped(&self) -> u64 {
        self.dropped.iter().sum()
    }

    /// Number of monitor shards this sender routes across.
    pub fn shards(&self) -> usize {
        self.producers.len()
    }
}

impl Drop for EventSender {
    fn drop(&mut self) {
        for (sink, &dropped) in self.drop_sinks.iter().zip(&self.dropped) {
            if dropped > 0 {
                sink.fetch_add(dropped, Ordering::AcqRel);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bw_analysis::TidCheck;

    fn table_with(kinds: Vec<Option<CheckKind>>) -> CheckTable {
        CheckTable { kinds }
    }

    fn ev(branch: u32, thread: u32, witness: u64, taken: bool) -> BranchEvent {
        BranchEvent { branch, thread, site: 0, iter: 0, witness, taken }
    }

    #[test]
    fn eager_check_fires_at_full_instance() {
        let checks = table_with(vec![Some(CheckKind::SharedUniform)]);
        let mut m = Monitor::new(checks, 2);
        m.process(ev(0, 0, 5, true));
        assert!(!m.detected());
        m.process(ev(0, 1, 5, false)); // direction mismatch
        assert!(m.detected());
        assert_eq!(m.violations()[0].kind, ViolationKind::DirectionMismatch);
        assert_eq!(m.violations()[0].reporters, 2);
    }

    #[test]
    fn flush_checks_partial_instances() {
        let checks = table_with(vec![Some(CheckKind::SharedUniform)]);
        let mut m = Monitor::new(checks, 4);
        m.process(ev(0, 0, 5, true));
        m.process(ev(0, 1, 6, true)); // witness mismatch, but only 2 of 4
        assert!(!m.detected());
        assert_eq!(m.pending_instances(), 1);
        m.flush();
        assert!(m.detected());
        assert_eq!(m.violations()[0].kind, ViolationKind::WitnessMismatch);
    }

    #[test]
    fn uninstrumented_branches_are_ignored() {
        let checks = table_with(vec![None]);
        let mut m = Monitor::new(checks, 2);
        m.process(ev(0, 0, 1, true));
        m.process(ev(0, 1, 2, false));
        m.flush();
        assert!(!m.detected());
    }

    #[test]
    fn clean_run_has_no_violations() {
        let checks = table_with(vec![
            Some(CheckKind::SharedUniform),
            Some(CheckKind::ThreadIdPredicate(TidCheck::AtMostOneTaken)),
        ]);
        let mut m = Monitor::new(checks, 4);
        for t in 0..4 {
            m.process(ev(0, t, 42, true));
            m.process(BranchEvent { branch: 1, thread: t, site: 0, iter: 0, witness: 0, taken: t == 0 });
        }
        m.flush();
        assert!(!m.detected());
        assert_eq!(m.events_processed(), 8);
    }

    #[cfg(feature = "provenance")]
    #[test]
    fn violation_report_snapshots_every_reporter() {
        let checks = table_with(vec![Some(CheckKind::SharedUniform)]);
        let mut m = Monitor::new(checks, 4);
        // Thread 0 lies about the witness; the check fires when thread 3's
        // report completes the instance.
        for t in 0..4 {
            let witness = if t == 0 { 7 } else { 5 };
            m.process(ev(0, t, witness, true));
        }
        assert!(m.detected());
        let reports = m.violation_reports();
        assert_eq!(reports.len(), 1);
        let r = &reports[0];
        assert_eq!(r.violation, m.violations()[0]);
        // Snapshot completeness: every reporting thread is in the observed
        // table, sorted by thread id, and the split singles out the liar.
        let threads: Vec<u32> = r.observed.iter().map(|o| o.thread).collect();
        assert_eq!(threads, vec![0, 1, 2, 3]);
        assert_eq!(r.deviants, vec![0]);
        assert_eq!(r.majority, vec![1, 2, 3]);
        // The ring window holds all four events; the deviant reported at
        // seq 1 and the check fired at seq 4, three messages later.
        assert_eq!(r.window.len(), 4);
        assert_eq!(r.detected_seq, 4);
        assert_eq!(r.detection_latency, Some(3));
    }

    #[cfg(not(feature = "provenance"))]
    #[test]
    fn violation_reports_are_empty_without_the_feature() {
        let checks = table_with(vec![Some(CheckKind::SharedUniform)]);
        let mut m = Monitor::new(checks, 2);
        m.process(ev(0, 0, 5, true));
        m.process(ev(0, 1, 6, true));
        assert!(m.detected());
        assert!(m.violation_reports().is_empty());
    }

    #[test]
    fn monitor_thread_end_to_end() {
        use crate::topology::{MonitorBuilder, MonitorTopology};
        let checks = table_with(vec![Some(CheckKind::SharedUniform)]);
        let nthreads = 4;
        let (senders, handle) = MonitorBuilder::new(checks, nthreads)
            .topology(MonitorTopology::Flat)
            .queue_capacity(256)
            .spawn();

        let handles: Vec<_> = senders
            .into_iter()
            .enumerate()
            .map(|(t, mut sender)| {
                std::thread::spawn(move || {
                    for i in 0..100u64 {
                        // Thread 2 lies about instance 50.
                        let witness = if t == 2 && i == 50 { 999 } else { i };
                        sender.send(BranchEvent {
                            branch: 0,
                            thread: t as u32,
                            site: 0,
                            iter: i,
                            witness,
                            taken: true,
                        });
                    }
                    assert_eq!(sender.dropped(), 0);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let verdict = handle.join();
        assert_eq!(verdict.events_processed, 400);
        assert_eq!(verdict.violations.len(), 1);
        assert_eq!(verdict.violations[0].iter, 50);
        assert_eq!(verdict.violations[0].kind, ViolationKind::WitnessMismatch);
    }

    #[test]
    fn describe_renders_every_kind() {
        for kind in [
            ViolationKind::WitnessMismatch,
            ViolationKind::DirectionMismatch,
            ViolationKind::GroupMismatch,
            ViolationKind::TidPredicate,
        ] {
            let v = Violation { branch: 7, site: 0xabc, iter: 3, kind, reporters: 4 };
            let text = v.describe();
            assert!(text.contains("br7"), "{text}");
            assert!(text.contains("4 reporters"), "{text}");
        }
    }
}
