//! Regression tests for the monitor's telemetry accounting:
//!
//! * queue-occupancy / pending-instance high-water marks are monotone and
//!   consistent with `events_processed`;
//! * flush batch accounting matches what `flush` actually drained;
//! * sender-side drop counts survive the sender (the `EventSender` drop
//!   aggregation bugfix) and surface on the joined monitor — flat and
//!   sharded here; the hierarchical variant lives in the `hierarchy`
//!   module's unit tests next to the crate-private spawn it needs.
//!
//! All strict value assertions are conditioned on the `telemetry` feature
//! (without it the gated instruments legitimately read zero); the
//! drop-count aggregation is correctness data and is asserted
//! unconditionally.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bw_analysis::CheckKind;
use bw_monitor::{
    shard_of, spsc_queue, BranchEvent, CheckTable, EventSender, Monitor, ShardedMonitorThread,
};

const TELEMETRY: bool = cfg!(feature = "telemetry");

fn checks() -> CheckTable {
    CheckTable::from_kinds(vec![Some(CheckKind::SharedUniform)])
}

fn ev(thread: u32, iter: u64, witness: u64) -> BranchEvent {
    BranchEvent { branch: 0, thread, site: 0, iter, witness, taken: true }
}

/// Feeding a passive monitor event by event, the pending-table high-water
/// gauge never decreases and never exceeds the events processed so far.
#[test]
fn pending_high_water_is_monotone_and_bounded() {
    let nthreads = 4;
    let mut m = Monitor::new(checks(), nthreads);
    let mut last_high_water = 0u64;
    let mut fed = 0u64;
    // Interleave 3 of 4 threads over many instances so the pending table
    // keeps growing: no instance ever completes.
    for iter in 0..50u64 {
        for t in 0..3u32 {
            m.process(ev(t, iter, iter));
            fed += 1;
            let hw = m.telemetry().pending_high_water.get();
            assert!(hw >= last_high_water, "high water went backwards");
            assert!(hw <= fed, "high water {hw} exceeds events processed {fed}");
            last_high_water = hw;
        }
    }
    assert_eq!(m.events_processed(), fed);
    if TELEMETRY {
        // Every instance stays pending, so the mark must have reached the
        // full instance count.
        assert_eq!(last_high_water, 50);
        assert_eq!(m.pending_instances(), 50);
    } else {
        assert_eq!(last_high_water, 0);
    }
}

/// `flush` accounting agrees with what it drained, and drained instances
/// are consistent with `events_processed`.
#[test]
fn flush_batches_match_drained_instances() {
    let nthreads = 4;
    let mut m = Monitor::new(checks(), nthreads);
    // 10 complete instances (checked eagerly, not flushed) …
    for iter in 0..10u64 {
        for t in 0..4u32 {
            m.process(ev(t, iter, 7));
        }
    }
    // … plus 5 partial ones that only flush can resolve.
    for iter in 100..105u64 {
        m.process(ev(0, iter, 7));
        m.process(ev(1, iter, 7));
    }
    let pending_before = m.pending_instances() as u64;
    assert_eq!(pending_before, 5);
    m.flush();
    assert_eq!(m.pending_instances(), 0);
    let t = m.telemetry();
    if TELEMETRY {
        assert_eq!(t.flush_calls.get(), 1);
        assert_eq!(t.flush_batch_total.get(), pending_before);
        assert_eq!(t.flush_batch_max.get(), pending_before);
        // Flushed instances can never outnumber processed events.
        assert!(t.flush_batch_total.get() <= m.events_processed());
        // A second flush with nothing pending adds an empty batch.
        let total_before = t.flush_batch_total.get();
        m.flush();
        let t = m.telemetry();
        assert_eq!(t.flush_calls.get(), 2);
        assert_eq!(t.flush_batch_total.get(), total_before);
    } else {
        assert_eq!(t.flush_calls.get(), 0);
        assert_eq!(t.flush_batch_total.get(), 0);
    }
}

/// The monitor thread's queue high-water mark stays within the physical
/// queue capacity and is consistent with the event totals. Flat ingest is
/// a one-shard [`ShardedMonitorThread`]; explicit queues let the test
/// pre-fill them before any monitor exists.
#[test]
fn queue_high_water_is_bounded_by_capacity() {
    let nthreads = 2;
    let capacity = 64;
    let mut producers = Vec::new();
    let mut consumers = Vec::new();
    for _ in 0..nthreads {
        let (p, c) = spsc_queue(capacity);
        producers.push(EventSender::new(p));
        consumers.push(c);
    }
    // Pre-fill the queues before the monitor exists so the first drain
    // pass observes a known occupancy.
    for (t, sender) in producers.iter_mut().enumerate() {
        for iter in 0..(capacity as u64) {
            sender.send(ev(t as u32, iter, 1));
        }
        assert_eq!(sender.dropped(), 0);
        assert_eq!(sender.sent(), capacity as u64);
    }
    let monitor = ShardedMonitorThread::spawn(
        checks(),
        nthreads,
        vec![consumers],
        vec![Arc::new(AtomicU64::new(0))],
    );
    drop(producers);
    let verdict = monitor.join();
    assert_eq!(verdict.events_processed, (nthreads * capacity) as u64);
    let hw = verdict.telemetry.gauge("monitor.queue_high_water").unwrap_or(0);
    assert!(hw <= capacity as u64, "high water {hw} exceeds capacity {capacity}");
    assert!(hw <= verdict.events_processed);
    if TELEMETRY {
        // The queues were full before the monitor started draining.
        assert_eq!(hw, capacity as u64);
    } else {
        assert_eq!(hw, 0);
    }
}

/// Per-check-kind violation tallies agree with the violation list.
#[test]
fn violation_tallies_match_violations() {
    let nthreads = 2;
    let mut m = Monitor::new(checks(), nthreads);
    for iter in 0..8u64 {
        let witness = if iter % 2 == 0 { 1 } else { 2 };
        m.process(ev(0, iter, 1));
        m.process(ev(1, iter, witness)); // odd iters mismatch
    }
    m.flush();
    assert_eq!(m.violations().len(), 4);
    if TELEMETRY {
        assert_eq!(m.telemetry().violations_shared_uniform.get(), 4);
        assert_eq!(m.snapshot().counter("monitor.violations.shared_uniform"), Some(4));
    }
    assert_eq!(m.snapshot().counter("monitor.violations"), Some(4));
}

/// Bugfix regression: a sender dropped (thread exit) after overflowing its
/// queue must not take its drop count with it — the joined monitor sees it.
/// (The hierarchical-topology variant lives in the `hierarchy` module's
/// unit tests, next to the crate-private spawn it needs.)
#[test]
fn dropped_events_survive_the_sender() {
    let drops = Arc::new(AtomicU64::new(0));
    let (p, c) = spsc_queue(4);
    let mut sender = EventSender::with_drop_counter(p, Arc::clone(&drops));
    // No consumer is draining yet: capacity 4, so sends 5..=7 must drop
    // after the spin budget.
    for iter in 0..7u64 {
        sender.send(ev(0, iter, 1));
    }
    assert_eq!(sender.sent(), 4);
    assert_eq!(sender.dropped(), 3);
    assert_eq!(drops.load(Ordering::Acquire), 0, "flushed only on drop");
    drop(sender);
    assert_eq!(drops.load(Ordering::Acquire), 3);

    // The one-shard monitor spawned over the same drop sink reports the
    // loss.
    let monitor = ShardedMonitorThread::spawn(checks(), 1, vec![vec![c]], vec![drops]);
    let verdict = monitor.join();
    assert_eq!(verdict.events_dropped, 3);
    assert_eq!(verdict.events_processed, 4);
    assert_eq!(verdict.telemetry.counter("monitor.events_dropped"), Some(3));
}

/// The same drop-survival guarantee through sharded ingest: each shard's
/// sink collects the drops charged to that shard's queues, the merged
/// verdict sums them, and per-shard counters expose the split.
#[test]
fn dropped_events_survive_the_sender_sharded() {
    let shards = 2usize;
    // One site per shard, found by probing the routing hash the sender
    // itself uses.
    let site_for = |shard: usize| {
        (0u64..).find(|&site| shard_of(site, 0, shards) == shard).expect("some site routes here")
    };
    let shard_drops: Vec<Arc<AtomicU64>> =
        (0..shards).map(|_| Arc::new(AtomicU64::new(0))).collect();
    let mut producers = Vec::new();
    let mut shard_queues = Vec::new();
    for _ in 0..shards {
        let (p, c) = spsc_queue(4);
        producers.push(p);
        shard_queues.push(vec![c]);
    }
    let mut sender =
        EventSender::fanned(producers, shard_drops.iter().map(Arc::clone).collect());
    // No consumer is draining yet: 7 events per shard into capacity-4
    // queues, so each shard drops 3.
    for shard in 0..shards {
        let site = site_for(shard);
        for iter in 0..7u64 {
            sender.send(BranchEvent { branch: 0, thread: 0, site, iter, witness: 1, taken: true });
        }
    }
    assert_eq!(sender.sent(), 8);
    assert_eq!(sender.dropped(), 6);
    assert_eq!(shard_drops[0].load(Ordering::Acquire), 0, "flushed only on drop");
    drop(sender);
    assert_eq!(shard_drops[0].load(Ordering::Acquire), 3);
    assert_eq!(shard_drops[1].load(Ordering::Acquire), 3);

    let monitor = ShardedMonitorThread::spawn(checks(), 1, shard_queues, shard_drops);
    let verdict = monitor.join();
    assert_eq!(verdict.events_dropped, 6);
    assert_eq!(verdict.events_processed, 8);
    assert_eq!(verdict.telemetry.counter("monitor.events_dropped"), Some(6));
    assert_eq!(verdict.telemetry.counter("monitor.shard.0.events_dropped"), Some(3));
    assert_eq!(verdict.telemetry.counter("monitor.shard.1.events_dropped"), Some(3));
    assert_eq!(verdict.telemetry.counter("monitor.shard.0.events_processed"), Some(4));
}
