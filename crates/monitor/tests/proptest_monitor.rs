//! Property tests for the monitor infrastructure: the SPSC queue against a
//! sequential model, hash stability, and checker invariants.

use bw_analysis::{CheckKind, TidCheck};
use bw_monitor::{check_instance, hash_words, spsc_queue, Report};
use proptest::prelude::*;
use std::collections::VecDeque;

#[derive(Clone, Debug)]
enum QueueOp {
    Push(u64),
    Pop,
}

fn ops() -> impl Strategy<Value = Vec<QueueOp>> {
    proptest::collection::vec(
        prop_oneof![any::<u64>().prop_map(QueueOp::Push), Just(QueueOp::Pop)],
        0..200,
    )
}

proptest! {
    /// The SPSC queue behaves exactly like a bounded FIFO model under any
    /// sequential operation interleaving.
    #[test]
    fn spsc_matches_fifo_model(ops in ops(), capacity in 1usize..16) {
        let (producer, consumer) = spsc_queue(capacity);
        let mut model: VecDeque<u64> = VecDeque::new();
        for op in ops {
            match op {
                QueueOp::Push(v) => {
                    let pushed = producer.push(v).is_ok();
                    let model_pushed = model.len() < capacity;
                    prop_assert_eq!(pushed, model_pushed);
                    if model_pushed {
                        model.push_back(v);
                    }
                }
                QueueOp::Pop => {
                    prop_assert_eq!(consumer.pop(), model.pop_front());
                }
            }
            prop_assert_eq!(producer.len(), model.len());
        }
    }

    /// FNV key hashing is deterministic and (practically) injective on
    /// small word sequences.
    #[test]
    fn hashing_is_stable(words in proptest::collection::vec(any::<u64>(), 0..8)) {
        prop_assert_eq!(hash_words(words.iter().copied()), hash_words(words.iter().copied()));
    }

    /// A set of reports that all agree passes every check kind.
    #[test]
    fn agreement_passes_all_checks(
        nthreads in 2u32..16,
        witness in any::<u64>(),
        taken in any::<bool>(),
    ) {
        let reports: Vec<Report> =
            (0..nthreads).map(|t| Report { thread: t, witness, taken }).collect();
        for kind in [CheckKind::SharedUniform, CheckKind::GroupByWitness] {
            prop_assert!(check_instance(kind, &reports).is_ok());
        }
        // Uniform outcomes satisfy every ordered tid predicate; the
        // equality predicates need the dissenter bound to hold.
        for tid in [TidCheck::TakenIsPrefix, TidCheck::TakenIsSuffix] {
            prop_assert!(check_instance(CheckKind::ThreadIdPredicate(tid), &reports).is_ok());
        }
    }

    /// Checker verdicts are invariant under permutation of the reports.
    #[test]
    fn verdicts_are_permutation_invariant(
        mut reports in proptest::collection::vec(
            (0u32..8, 0u64..4, any::<bool>())
                .prop_map(|(thread, witness, taken)| Report { thread, witness, taken }),
            2..8,
        ),
    ) {
        // Deduplicate thread ids (the table does this in production).
        reports.sort_by_key(|r| r.thread);
        reports.dedup_by_key(|r| r.thread);
        for kind in [
            CheckKind::SharedUniform,
            CheckKind::GroupByWitness,
            CheckKind::ThreadIdPredicate(TidCheck::AtMostOneTaken),
            CheckKind::ThreadIdPredicate(TidCheck::TakenIsPrefix),
        ] {
            let forward = check_instance(kind, &reports);
            let mut reversed = reports.clone();
            reversed.reverse();
            prop_assert_eq!(forward, check_instance(kind, &reversed));
        }
    }

    /// A single dissenting direction within a witness group is always
    /// caught by the group check.
    #[test]
    fn split_group_is_always_caught(
        nthreads in 3u32..12,
        witness in any::<u64>(),
        dissenter in 0u32..3,
    ) {
        let dissenter = dissenter % nthreads;
        let reports: Vec<Report> = (0..nthreads)
            .map(|t| Report { thread: t, witness, taken: t == dissenter })
            .collect();
        prop_assert!(check_instance(CheckKind::GroupByWitness, &reports).is_err());
        prop_assert!(check_instance(CheckKind::SharedUniform, &reports).is_err());
    }
}
