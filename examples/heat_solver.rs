//! Protecting a user-written SPMD kernel: a 1-D heat-diffusion solver.
//!
//! Shows the workflow a downstream user follows: write a pthreads-style
//! SPMD program in the mini language, let BLOCKWATCH classify its branches,
//! measure the instrumentation overhead on the simulated 32-core machine,
//! and quantify the coverage improvement with a small fault campaign.
//!
//! Run with: `cargo run --release -p blockwatch --example heat_solver`

use blockwatch::reports::overhead_point;
use blockwatch::vm::MonitorMode;
use blockwatch::{Blockwatch, FaultModel};

const HEAT: &str = r#"
    module heat1d;
    shared int cells = 512;
    shared int steps = 24;
    shared int chunkbeg[33];
    shared int chunkend[33];
    float temp[514];
    float next[514];
    barrier tick;

    @init func setup() {
        for (var p: int = 0; p < numthreads(); p = p + 1) {
            chunkbeg[p] = 1 + p * cells / numthreads();
            chunkend[p] = 1 + (p + 1) * cells / numthreads();
        }
        for (var i: int = 0; i < cells + 2; i = i + 1) {
            temp[i] = float(rand(100));
        }
        temp[0] = 0.0;
        temp[cells + 1] = 100.0;
    }

    @spmd func slave() {
        var procid: int = threadid();
        var first: int = chunkbeg[procid];
        // Iterating `k < cells/numthreads()` (a shared trip count) instead
        // of `i < chunkend[procid]` keeps the loop branch in the `shared`
        // category, where BLOCKWATCH's cross-thread check is strongest.
        var chunk: int = cells / numthreads();
        for (var t: int = 0; t < steps; t = t + 1) {
            for (var k: int = 0; k < chunk; k = k + 1) {
                var i: int = first + k;
                next[i] = temp[i] + 0.25 * (temp[i - 1] - 2.0 * temp[i] + temp[i + 1]);
            }
            barrier(tick);
            for (var k: int = 0; k < chunk; k = k + 1) {
                temp[first + k] = next[first + k];
            }
            if (procid == 0) {
                temp[0] = 0.0;
                temp[cells + 1] = 100.0;
            }
            barrier(tick);
        }
        // Report the chunk's mean temperature, %d-style.
        var sum: float = 0.0;
        for (var k: int = 0; k < chunk; k = k + 1) {
            sum = sum + temp[first + k];
        }
        output(int(sum / float(chunk)));
    }
"#;

fn main() {
    let bw = Blockwatch::compile(HEAT).expect("solver compiles");

    let h = bw.histogram();
    println!("branch classification: {h:?}");
    println!(
        "instrumented branches: {} of {}",
        bw.plan().num_instrumented(),
        h.total()
    );

    println!("\noverhead on the simulated 32-core machine:");
    for n in [1u32, 2, 4, 8, 16, 32] {
        let p = overhead_point(bw.image(), n);
        println!(
            "  {:2} threads: baseline {:9} cycles, protected {:9} cycles -> {:.2}x",
            n,
            p.baseline_cycles,
            p.protected_cycles,
            p.ratio()
        );
    }

    println!("\nfault campaign (300 branch-flip faults, 8 threads):");
    let protected = bw
        .campaign_runner(300, FaultModel::BranchFlip, 8)
        .seed(2024)
        .run()
        .expect("campaign runs");
    let baseline = bw
        .campaign_runner(300, FaultModel::BranchFlip, 8)
        .seed(2024)
        .monitor(MonitorMode::Off)
        .run()
        .expect("campaign runs");
    println!("  without BLOCKWATCH: {:?}", baseline.counts);
    println!("  with    BLOCKWATCH: {:?}", protected.counts);
    println!(
        "  coverage: {:.1}% -> {:.1}%",
        100.0 * baseline.coverage(),
        100.0 * protected.coverage()
    );
}
