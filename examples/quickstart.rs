//! Quickstart: protect the paper's Figure 1 program with BLOCKWATCH.
//!
//! Compiles the example SPMD program, prints the similarity category of
//! every branch (Table I), runs it fault-free, then injects the exact
//! fault of the paper's Section II-D — corrupting `procid` in one thread
//! so it wrongly takes the leader branch — and shows the monitor flagging
//! the violation.
//!
//! Run with: `cargo run -p blockwatch --example quickstart`

use blockwatch::fault::{InjectionHook, InjectionPlan};
use blockwatch::vm::{run_sim_with_hook, SimConfig};
use blockwatch::{Blockwatch, FaultModel};

const FIGURE1: &str = r#"
    module figure1;
    tid_counter int id = 0;
    shared int im = 16;
    int gp[64];
    mutex l;

    @init func main() {
        for (var i: int = 0; i < 64; i = i + 1) { gp[i] = rand(32); }
    }

    @spmd func slave() {
        lock(l);
        var procid: int = fetch_add(id, 1);     // the paper's procid = id++
        unlock(l);

        if (procid == 0) {                      // Branch 1: threadID
            output(procid);
        }
        var private: int = 0;
        for (var i: int = 0; i <= im - 1; i = i + 1) {   // Branch 2: shared
            if (gp[procid] > im - 1) {          // Branch 3: none
                private = 1;
            } else {
                private = 0 - 1;
            }
            if (private > 0) {                  // Branch 4: partial
                output(private);
            }
        }
    }
"#;

fn main() {
    let bw = Blockwatch::compile(FIGURE1).expect("figure 1 compiles");

    println!("== static similarity analysis (paper Table I / Figure 1) ==");
    for branch in bw.analysis().parallel_branches() {
        let func = &bw.image().module.func(branch.func).name;
        println!(
            "  branch {} in `{}` (loop depth {}): {}",
            branch.id, func, branch.loop_depth, branch.category
        );
    }
    let h = bw.histogram();
    println!(
        "  -> {} branches: {} shared, {} threadID, {} partial, {} none",
        h.total(),
        h.shared,
        h.thread_id,
        h.partial,
        h.none
    );

    println!("\n== fault-free run, 4 threads ==");
    let clean = bw.run(4);
    println!("  outcome: {:?}, outputs: {:?}", clean.outcome, clean.outputs);
    println!("  monitor events: {}, violations: {}", clean.events_sent, clean.violations.len());
    assert!(!clean.detected(), "no false positives");

    println!("\n== injecting the paper's Section II-D fault ==");
    println!("  (flip thread 2's first branch -- it wrongly takes `procid == 0`)");
    let mut hook = InjectionHook::new(InjectionPlan {
        tid: 2,
        dyn_index: 1,
        model: FaultModel::BranchFlip,
        value_choice: 0,
        bit: 0,
    });
    let faulty = run_sim_with_hook(bw.image(), &SimConfig::new(4), &mut hook);
    println!("  outcome: {:?}", faulty.outcome);
    for v in &faulty.violations {
        println!("  VIOLATION: branch {} -> {:?} ({} reporters)", v.branch, v.kind, v.reporters);
    }
    assert!(faulty.detected(), "the threadID check catches the second taker");
    println!("\nBLOCKWATCH detected the control-data error, as in the paper.");
}
