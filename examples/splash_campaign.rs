//! Fault-injection campaign on a SPLASH-2 port, with a per-branch
//! breakdown of where the detections came from.
//!
//! Run with:
//! `cargo run --release -p blockwatch --example splash_campaign [benchmark] [injections]`

use std::collections::HashMap;

use blockwatch::fault::FaultOutcome;
use blockwatch::{Benchmark, Blockwatch, FaultModel, Size};

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "FFT".to_string());
    let injections: usize =
        std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(400);
    let bench = Benchmark::ALL
        .iter()
        .copied()
        .find(|b| b.name().to_lowercase().contains(&which.to_lowercase()))
        .unwrap_or(Benchmark::Fft);

    println!("campaign: {} / {injections} injections of each fault model / 4 threads", bench.name());
    let bw = Blockwatch::from_module(bench.module(Size::Small).expect("port compiles"))
        .expect("port verifies");

    // Both models share the benchmark's cached golden run; the worker pool
    // shards injections but the results are deterministic.
    for model in [FaultModel::BranchFlip, FaultModel::ConditionBitFlip] {
        let result = bw
            .campaign_runner(injections, model, 4)
            .seed(77)
            .run()
            .expect("campaign runs");
        println!("\n== {model:?} ==");
        println!("  {:?}", result.counts);
        println!("  coverage: {:.1}%", 100.0 * result.coverage());

        // Which static branches produced SDCs despite protection?
        let mut sdc_branches: HashMap<u32, usize> = HashMap::new();
        for record in &result.records {
            if record.outcome == FaultOutcome::Sdc {
                if let Some(branch) = record.branch {
                    *sdc_branches.entry(branch).or_default() += 1;
                }
            }
        }
        if sdc_branches.is_empty() {
            println!("  no SDCs escaped");
        } else {
            println!("  SDC-escaping branches (id: count, category):");
            let mut entries: Vec<_> = sdc_branches.into_iter().collect();
            entries.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
            for (branch, count) in entries.into_iter().take(5) {
                let info = &bw.analysis().branches[branch as usize];
                println!(
                    "    br{branch}: {count} ({}, loop depth {})",
                    info.category, info.loop_depth
                );
            }
        }
    }
}
