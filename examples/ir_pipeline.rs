//! Working below the front-end: build a program with the IR builder API,
//! inspect the textual IR and the analysis internals, and run it on both
//! execution engines.
//!
//! Run with: `cargo run -p blockwatch --example ir_pipeline`

use std::sync::Arc;

use blockwatch::ir::{CmpOp, FunctionBuilder, Module, ModulePrinter, Type, Val};
use blockwatch::vm::{run_real, run_sim, ProgramImage, RealConfig, SimConfig};
use blockwatch::Category;

fn main() {
    // Build: every thread checks `tid < limit` against a shared limit and
    // outputs its id if below.
    let mut module = Module::new("builder_demo");
    let limit = module.add_global("limit", Type::I64, Val::I64(3), true);

    let mut b = FunctionBuilder::new("slave", vec![], None);
    let tid = b.thread_id();
    let lim = b.load_global(&module, limit);
    let below = b.cmp(CmpOp::Lt, tid, lim);
    let then_bb = b.add_block("below");
    let done_bb = b.add_block("done");
    b.br(below, then_bb, done_bb);
    b.switch_to(then_bb);
    b.output(tid);
    b.jump(done_bb);
    b.switch_to(done_bb);
    b.ret(None);
    let slave = module.add_func(b.finish());
    module.spmd_entry = Some(slave);

    println!("== textual IR ==\n{}", ModulePrinter(&module));

    let image = ProgramImage::prepare_default(module);
    let branch = &image.analysis.branches[0];
    println!("branch category: {} (expected threadID)", branch.category);
    assert_eq!(branch.category, Category::ThreadId);
    let check = image.plan.check(branch.id).expect("instrumented");
    println!("runtime check: {:?}", check.kind);

    let sim = run_sim(&image, &SimConfig::new(8));
    println!("\nsimulated run, 8 threads: outputs {:?}", sim.outputs);

    let real = run_real(&Arc::new(image), &RealConfig::new(8));
    println!("real-threads run, 8 threads: outputs {:?}", real.outputs);
    assert_eq!(sim.outputs, real.outputs);
    println!("\nboth engines agree; the prefix predicate held in both.");
}
