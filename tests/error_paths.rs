//! Error-path coverage for the umbrella [`blockwatch::Error`]: every
//! variant must be reachable through the public pipeline API, render a
//! non-empty `Display` message, and expose its cause via
//! `std::error::Error::source`.

use std::error::Error as _;

use blockwatch::fault::run_campaign_with_golden;
use blockwatch::vm::run_sim;
use blockwatch::{
    Benchmark, Blockwatch, CampaignConfig, CampaignError, Error, FaultModel, Size, SimConfig,
};

fn assert_well_formed(err: &Error, expect_prefix: &str) {
    let msg = err.to_string();
    assert!(msg.starts_with(expect_prefix), "unexpected message: {msg}");
    assert!(msg.len() > expect_prefix.len(), "no detail beyond the prefix: {msg}");
    let cause = err.source().expect("umbrella error must expose its cause");
    assert!(!cause.to_string().is_empty());
}

#[test]
fn frontend_errors_surface_through_compile() {
    let err = Blockwatch::compile("this is not the mini-language !!").unwrap_err();
    assert!(matches!(err, Error::Frontend(_)), "got {err:?}");
    assert_well_formed(&err, "front-end error: ");
}

#[test]
fn verify_errors_surface_through_from_module() {
    let mut module = Benchmark::Fft.module(Size::Test).expect("port compiles");
    // Break SSA structure: a function with no blocks cannot verify.
    module.funcs[0].blocks.clear();
    let err = Blockwatch::from_module(module).unwrap_err();
    assert!(matches!(err, Error::Verify(_)), "got {err:?}");
    assert_well_formed(&err, "IR verification error: ");
}

#[test]
fn campaign_errors_surface_through_campaign() {
    let bw = Blockwatch::from_module(Benchmark::Fft.module(Size::Test).expect("port compiles"))
        .expect("verifies");

    // NoThreads: zero-thread configuration.
    let err = bw.campaign(&CampaignConfig::new(1, FaultModel::BranchFlip, 0)).unwrap_err();
    assert!(matches!(err, Error::Campaign(CampaignError::NoThreads)), "got {err:?}");
    assert_well_formed(&err, "campaign error: ");

    // GoldenRunFailed: a step budget no golden run can satisfy.
    let mut starved = CampaignConfig::new(1, FaultModel::BranchFlip, 4);
    starved.sim.max_steps = 10;
    let err = bw.campaign(&starved).unwrap_err();
    assert!(
        matches!(err, Error::Campaign(CampaignError::GoldenRunFailed { .. })),
        "got {err:?}"
    );
    assert_well_formed(&err, "campaign error: ");

    // GoldenMismatch: cached golden profiled at a different thread count,
    // wrapped into the umbrella type via From.
    let golden = run_sim(bw.image(), &SimConfig::new(2));
    let config = CampaignConfig::new(1, FaultModel::BranchFlip, 4);
    let err: Error =
        run_campaign_with_golden(bw.image(), &config, &golden, None).unwrap_err().into();
    assert!(
        matches!(err, Error::Campaign(CampaignError::GoldenMismatch { expected: 4, actual: 2 })),
        "got {err:?}"
    );
    assert_well_formed(&err, "campaign error: ");
}

#[test]
fn umbrella_error_boxes_for_question_mark_chains() {
    fn pipeline() -> Result<Blockwatch, Box<dyn std::error::Error>> {
        Ok(Blockwatch::compile("definitely wrong")?)
    }
    let err = pipeline().unwrap_err();
    assert!(!err.to_string().is_empty());
}
