//! Sim-vs-real engine parity: both implementations of `bw_vm::Engine` must
//! agree on every schedule-independent observable for every SPLASH-2 port
//! at every swept thread count.
//!
//! Schedule-independent means: the run outcome, the absence of monitor
//! violations, and — for the ports whose outputs do not depend on lock
//! acquisition order — the program outputs themselves (both engines emit
//! outputs in thread-id order). Step counts, cycle attribution and event
//! totals are schedule-*dependent* and deliberately not compared.

use std::sync::Arc;

use blockwatch::vm::{
    engine, run_sim, EngineKind, ExecConfig, ProgramImage, RunOutcome, SimConfig,
};
use blockwatch::{Benchmark, Size};

const THREADS: [u32; 4] = [1, 2, 4, 8];

/// Ports whose outputs are schedule-independent (no lock-order-dependent
/// float accumulation feeding the output).
const DETERMINISTIC_OUTPUT_PORTS: [Benchmark; 3] =
    [Benchmark::Fft, Benchmark::Radix, Benchmark::Raytrace];

fn image(bench: Benchmark) -> Arc<ProgramImage> {
    Arc::new(ProgramImage::prepare_default(bench.module(Size::Test).expect("compiles")))
}

#[test]
fn every_port_completes_cleanly_on_both_engines() {
    let sim = engine(EngineKind::Sim);
    let real = engine(EngineKind::Real);
    for bench in Benchmark::ALL {
        let image = image(bench);
        for n in THREADS {
            let config = ExecConfig::new(n);
            for (eng, label) in [(sim, "sim"), (real, "real")] {
                let r = eng.run(&image, &config);
                assert_eq!(
                    r.outcome,
                    RunOutcome::Completed,
                    "{} at {n} threads on {label}",
                    bench.name()
                );
                assert!(
                    !r.detected(),
                    "false positive in {} at {n} threads on {label}: {:?}",
                    bench.name(),
                    r.violations
                );
            }
        }
    }
}

#[test]
fn engines_agree_on_outputs_of_deterministic_ports() {
    for bench in DETERMINISTIC_OUTPUT_PORTS {
        let image = image(bench);
        for n in THREADS {
            let config = ExecConfig::new(n);
            let sim = engine(EngineKind::Sim).run(&image, &config);
            let real = engine(EngineKind::Real).run(&image, &config);
            assert_eq!(sim.outcome, real.outcome, "{} at {n} threads", bench.name());
            assert_eq!(
                sim.outputs,
                real.outputs,
                "{} at {n} threads: sim and real outputs diverge",
                bench.name()
            );
        }
    }
}

#[test]
fn sim_engine_is_bitwise_identical_to_the_run_sim_wrapper() {
    // The Engine abstraction must be a pure refactor of the original entry
    // point: identical results, field for field, on the deterministic
    // engine.
    let image = image(Benchmark::Fft);
    let config = SimConfig::new(4).seed(0x5eed).capture_events(true);
    let via_wrapper = run_sim(&image, &config);
    let via_engine = engine(EngineKind::Sim).run(&image, &config);
    assert_eq!(via_wrapper.outcome, via_engine.outcome);
    assert_eq!(via_wrapper.outputs, via_engine.outputs);
    assert_eq!(via_wrapper.parallel_cycles, via_engine.parallel_cycles);
    assert_eq!(via_wrapper.total_steps, via_engine.total_steps);
    assert_eq!(via_wrapper.events_sent, via_engine.events_sent);
    assert_eq!(via_wrapper.events_processed, via_engine.events_processed);
    assert_eq!(via_wrapper.branches_per_thread, via_engine.branches_per_thread);
    assert_eq!(via_wrapper.steps_per_thread, via_engine.steps_per_thread);
    assert_eq!(via_wrapper.branch_events, via_engine.branch_events);
    assert_eq!(via_wrapper.violations, via_engine.violations);
    assert_eq!(
        via_wrapper.telemetry.deterministic_part(),
        via_engine.telemetry.deterministic_part()
    );
}

#[test]
fn engine_metadata_reflects_the_scheduler() {
    assert!(engine(EngineKind::Sim).deterministic());
    assert!(!engine(EngineKind::Real).deterministic());
    assert_eq!(engine(EngineKind::Sim).kind(), EngineKind::Sim);
    assert_eq!(engine(EngineKind::Real).kind(), EngineKind::Real);
}
