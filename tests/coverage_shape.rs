//! Shape tests for the Figure 8/9 coverage results: BLOCKWATCH must
//! improve (or at least never worsen) coverage, detect a substantial share
//! of branch-flip faults, and show the paper's qualitative orderings —
//! condition-fault baseline coverage exceeds branch-flip baseline
//! coverage, and raytrace gains the least.

use blockwatch::reports::coverage_row;
use blockwatch::{Benchmark, FaultModel, Size};

const INJECTIONS: usize = 60;
const SEED: u64 = 0x5eed;

#[test]
fn blockwatch_never_hurts_and_detects_flips() {
    let mut total_detected = 0;
    for bench in [Benchmark::OceanContig, Benchmark::Fft, Benchmark::Radix] {
        let row = coverage_row(bench, Size::Test, FaultModel::BranchFlip, 4, INJECTIONS, SEED)
            .expect("campaign runs");
        assert!(
            row.coverage_protected() + 1e-9 >= row.coverage_original(),
            "{}: protected {} < original {}",
            row.name,
            row.coverage_protected(),
            row.coverage_original()
        );
        total_detected += row.protected.detected;
    }
    assert!(
        total_detected > INJECTIONS,
        "expected most branch flips detected across the three programs, got {total_detected}"
    );
}

#[test]
fn condition_fault_baseline_coverage_exceeds_branch_flip_baseline() {
    // Paper Section V-C2: branch-condition faults may not flip the branch,
    // so the original program's coverage is higher than under guaranteed
    // flips (90% vs 83% on their testbed).
    let mut flip_sum = 0.0;
    let mut cond_sum = 0.0;
    for bench in [Benchmark::Fft, Benchmark::Radix, Benchmark::WaterNsquared] {
        flip_sum +=
            coverage_row(bench, Size::Test, FaultModel::BranchFlip, 4, INJECTIONS, SEED)
                .expect("campaign runs")
                .coverage_original();
        cond_sum +=
            coverage_row(bench, Size::Test, FaultModel::ConditionBitFlip, 4, INJECTIONS, SEED)
                .expect("campaign runs")
                .coverage_original();
    }
    assert!(
        cond_sum > flip_sum,
        "condition-fault baseline {cond_sum} should exceed branch-flip baseline {flip_sum}"
    );
}

#[test]
fn raytrace_gains_least_from_blockwatch() {
    // Paper Figure 8: raytrace is the exception — function pointers and
    // deep loop nests leave it barely better than unprotected.
    let ray =
        coverage_row(Benchmark::Raytrace, Size::Test, FaultModel::BranchFlip, 4, INJECTIONS, SEED)
            .expect("campaign runs");
    let ocean = coverage_row(
        Benchmark::OceanContig,
        Size::Test,
        FaultModel::BranchFlip,
        4,
        INJECTIONS,
        SEED,
    )
    .expect("campaign runs");
    let ray_gain = ray.coverage_protected() - ray.coverage_original();
    let ocean_gain = ocean.coverage_protected() - ocean.coverage_original();
    assert!(
        ray_gain < ocean_gain,
        "raytrace gain {ray_gain} should be below ocean gain {ocean_gain}"
    );
    let ray_rate = ray.protected.detection_rate();
    let ocean_rate = ocean.protected.detection_rate();
    assert!(
        ray_rate < ocean_rate,
        "raytrace detection rate {ray_rate} should be below ocean {ocean_rate}"
    );
}

#[test]
fn campaigns_with_same_seed_share_targets() {
    let a = coverage_row(Benchmark::Fft, Size::Test, FaultModel::BranchFlip, 2, 20, 42)
        .expect("campaign runs");
    let b = coverage_row(Benchmark::Fft, Size::Test, FaultModel::BranchFlip, 2, 20, 42)
        .expect("campaign runs");
    assert_eq!(a.protected, b.protected);
    assert_eq!(a.original, b.original);
}
