//! The paper's Section IV false-positive experiment, as a test: repeated
//! fault-free runs of every instrumented benchmark report zero violations.
//! (The full 100-run sweep is `cargo run -p bw-bench --bin false_positives`;
//! this test keeps CI time bounded with a smaller sweep over more
//! configurations.)

use blockwatch::reports::false_positive_sweep;
use blockwatch::Size;

#[test]
fn no_false_positives_across_seeds_and_thread_counts() {
    for nthreads in [2u32, 4, 8] {
        for (name, fps) in false_positive_sweep(Size::Test, nthreads, 5) {
            assert_eq!(fps, 0, "{name} at {nthreads} threads produced false positives");
        }
    }
}
