//! The telemetry determinism contract: for a fixed (program, config,
//! seed), the **counter and gauge** part of a run's telemetry snapshot is
//! bitwise reproducible — only histograms (wall-clock timings) may differ
//! between two identical runs. This is what makes the counters usable as
//! regression oracles for the figure-8/9 overhead attribution.

use std::io::{self, Write};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use blockwatch::reports::ForensicsReport;
use blockwatch::splash::{Benchmark, Size};
use blockwatch::timeline::TimelineReport;
use blockwatch::{
    Blockwatch, EngineKind, ExecConfig, FaultModel, JsonlRecorder, MetricRegistry, Recorder,
    Sampler, SimConfig,
};

/// Serializes the tests that install the process-global `--trace-spans`
/// sink, so parallel test threads cannot see each other's spans.
static TRACE_SINK_LOCK: Mutex<()> = Mutex::new(());

fn trace_sink_lock() -> std::sync::MutexGuard<'static, ()> {
    TRACE_SINK_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Two same-seed simulated runs produce identical deterministic snapshots.
#[test]
fn same_seed_runs_have_identical_counters() {
    let bw = Blockwatch::from_module(Benchmark::Fft.module(Size::Test).unwrap()).unwrap();
    let config = SimConfig::new(4).seed(0xdead_beef);
    let a = bw.run_with(&config);
    let b = bw.run_with(&config);

    let da = a.telemetry.deterministic_part();
    let db = b.telemetry.deterministic_part();
    assert_eq!(da.counters(), db.counters(), "counters must be reproducible");
    assert_eq!(da.gauges(), db.gauges(), "gauges must be reproducible");

    // The snapshot agrees with the run's own bookkeeping.
    assert_eq!(a.telemetry.counter("vm.instructions"), Some(a.total_steps));
    assert_eq!(a.telemetry.counter("vm.events_sent"), Some(a.events_sent));
    assert_eq!(
        a.telemetry.counter("vm.branches"),
        Some(a.branches_per_thread.iter().sum())
    );
    // Cycle attribution is internally consistent: the events bucket is
    // nonzero for an instrumented program.
    assert!(a.telemetry.counter("vm.cycles.events").is_some());
    // Per-thread step counters line up with the steps_per_thread vector.
    for (tid, &steps) in a.steps_per_thread.iter().enumerate() {
        assert_eq!(
            a.telemetry.counter(&format!("vm.thread.{tid}.steps")),
            Some(steps),
            "thread {tid} step counter"
        );
    }
}

/// A different seed is allowed to (and here does) change scheduling, but
/// each seed remains self-consistent.
#[test]
fn deterministic_part_excludes_wall_clock() {
    let bw = Blockwatch::from_module(Benchmark::Radix.module(Size::Test).unwrap()).unwrap();
    let result = bw.run(2);
    let det = result.telemetry.deterministic_part();
    assert!(det.histograms().is_empty(), "histograms are wall-clock, not deterministic");
    // The full pipeline snapshot keeps its stage-timing histograms.
    let pipeline = bw.telemetry();
    assert_eq!(pipeline.histograms().len(), 5, "one histogram per pipeline stage");
    assert!(pipeline.deterministic_part().histograms().is_empty());
}

/// Campaigns at one worker preserve the contract end to end: records and
/// outcome counters are reproducible; only wall-time histograms differ.
#[test]
fn same_seed_campaigns_have_identical_outcome_counters() {
    let bw = Blockwatch::from_module(Benchmark::Fft.module(Size::Test).unwrap()).unwrap();
    let run = || {
        bw.campaign_runner(20, FaultModel::BranchFlip, 2)
            .seed(11)
            .workers(1)
            .run()
            .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.records, b.records);
    let (da, db) = (a.telemetry.deterministic_part(), b.telemetry.deterministic_part());
    assert_eq!(da.counters(), db.counters());
    assert_eq!(
        a.telemetry.counter("campaign.outcome.detected"),
        Some(a.counts.detected as u64)
    );
}

/// A writer appending into a shared buffer, so the test can read the
/// JSONL trace back without touching the filesystem.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Live sampling is observability-only: a same-seed campaign traced with
/// a background [`Sampler`] attached produces the identical records,
/// identical deterministic telemetry, and a byte-identical `bw report` —
/// the `sample` records ride alongside without perturbing anything.
#[test]
fn sampling_does_not_perturb_campaign_determinism() {
    let bw = Blockwatch::from_module(Benchmark::Fft.module(Size::Test).unwrap()).unwrap();
    let run = |with_sampler: bool| {
        let buf = SharedBuf::default();
        let rec = Arc::new(JsonlRecorder::new(Box::new(buf.clone())));
        let sampler = with_sampler.then(|| {
            Sampler::start(
                MetricRegistry::global(),
                Arc::clone(&rec) as Arc<dyn Recorder>,
                Duration::from_millis(2),
            )
        });
        let result = bw
            .campaign_runner(20, FaultModel::BranchFlip, 2)
            .seed(11)
            .workers(1)
            .recorder(rec.as_ref())
            .run()
            .unwrap();
        if let Some(sampler) = sampler {
            sampler.stop();
        }
        rec.flush();
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        (result, text)
    };
    let (sampled, sampled_trace) = run(true);
    let (plain, plain_trace) = run(false);

    assert_eq!(sampled.records, plain.records);
    let (ds, dp) = (
        sampled.telemetry.deterministic_part(),
        plain.telemetry.deterministic_part(),
    );
    assert_eq!(ds.counters(), dp.counters());
    assert_eq!(ds.gauges(), dp.gauges());

    // The sampled trace actually contains sample records (with the
    // feature on — the sampler is inert without it)...
    if blockwatch::telemetry::ENABLED {
        assert!(sampled_trace.contains("\"ev\":\"sample\""), "{sampled_trace}");
    }
    assert!(!plain_trace.contains("\"ev\":\"sample\""));
    // ...and the forensics view ignores them: byte-identical reports.
    let report_sampled = ForensicsReport::parse(&sampled_trace).unwrap().render();
    let report_plain = ForensicsReport::parse(&plain_trace).unwrap().render();
    assert_eq!(report_sampled, report_plain);
}

/// Span tracing is observability-only on the run path: a same-seed sim
/// run with the `--trace-spans` sink installed produces byte-identical
/// outputs, violations and deterministic telemetry.
#[test]
fn span_tracing_does_not_perturb_run_determinism() {
    let _guard = trace_sink_lock();
    let bw = Blockwatch::from_module(Benchmark::Fft.module(Size::Test).unwrap()).unwrap();
    let run = |traced: bool| {
        let buf = SharedBuf::default();
        let rec = Arc::new(JsonlRecorder::new(Box::new(buf.clone())));
        if traced {
            blockwatch::telemetry::set_trace_sink(Some(Arc::clone(&rec) as Arc<dyn Recorder>));
        }
        let result = bw.run_on(EngineKind::Sim, &ExecConfig::new(4).monitor_shards(Some(2)));
        blockwatch::telemetry::set_trace_sink(None);
        rec.flush();
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        (result, text)
    };
    let (traced, trace) = run(true);
    let (plain, plain_trace) = run(false);

    assert_eq!(traced.outputs, plain.outputs);
    assert_eq!(traced.violations, plain.violations);
    assert_eq!(traced.parallel_cycles, plain.parallel_cycles);
    let (dt, dp) =
        (traced.telemetry.deterministic_part(), plain.telemetry.deterministic_part());
    assert_eq!(dt.counters(), dp.counters());
    assert_eq!(dt.gauges(), dp.gauges());
    if blockwatch::telemetry::ENABLED {
        assert!(trace.contains("\"ev\":\"tspan\""), "traced run emits spans");
        assert!(trace.contains("\"cat\":\"barrier_phase\""), "{trace}");
    }
    assert!(!plain_trace.contains("\"ev\":\"tspan\""));
}

/// ...and on the campaign path: records, outcome counters and the
/// rendered forensics report are byte-identical with tracing on or off,
/// at a multi-worker, multi-shard configuration.
#[test]
fn span_tracing_does_not_perturb_campaign_determinism() {
    let _guard = trace_sink_lock();
    let bw = Blockwatch::from_module(Benchmark::Fft.module(Size::Test).unwrap()).unwrap();
    let run = |traced: bool| {
        let buf = SharedBuf::default();
        let rec = Arc::new(JsonlRecorder::new(Box::new(buf.clone())));
        if traced {
            blockwatch::telemetry::set_trace_sink(Some(Arc::clone(&rec) as Arc<dyn Recorder>));
        }
        let result = bw
            .campaign_runner(20, FaultModel::BranchFlip, 2)
            .seed(11)
            .workers(2)
            .monitor_shards(Some(2))
            .recorder(rec.as_ref())
            .run()
            .unwrap();
        blockwatch::telemetry::set_trace_sink(None);
        rec.flush();
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        (result, text)
    };
    let (traced, trace) = run(true);
    let (plain, plain_trace) = run(false);

    assert_eq!(traced.records, plain.records);
    assert_eq!(traced.counts, plain.counts);
    let (dt, dp) =
        (traced.telemetry.deterministic_part(), plain.telemetry.deterministic_part());
    assert_eq!(dt.counters(), dp.counters());
    if blockwatch::telemetry::ENABLED {
        assert!(trace.contains("\"cat\":\"stage\""), "campaign stages traced");
        assert!(trace.contains("\"cat\":\"injection\""), "injections traced");
    }
    // The forensics view skips tspan records entirely: byte-identical.
    let report_traced = ForensicsReport::parse(&trace).unwrap().render();
    let report_plain = ForensicsReport::parse(&plain_trace).unwrap().render();
    assert_eq!(report_traced, report_plain);
}

/// A fixture where thread 0 does ~40x the work of its peers before the
/// first barrier; with `reps` constant the same source is symmetric.
fn straggler_source(straggle: bool) -> String {
    let boost = if straggle {
        "if (tid == 0) { reps = 40; }"
    } else {
        ""
    };
    format!(
        r#"
module straggler;

shared int n = 60;
int acc[33];

barrier phase;

@spmd func slave() {{
    var tid: int = threadid();
    var reps: int = 1;
    {boost}
    for (var r: int = 0; r < reps; r = r + 1) {{
        for (var i: int = 0; i < n; i = i + 1) {{
            acc[tid] = acc[tid] + i;
        }}
    }}
    barrier(phase);
    acc[tid] = acc[tid] + 1;
    barrier(phase);
    output(acc[tid]);
}}
"#
    )
}

/// Runs a source under the span sink and returns its parsed timeline.
fn traced_timeline(source: &str) -> TimelineReport {
    let _guard = trace_sink_lock();
    let bw = Blockwatch::compile(source).unwrap();
    let buf = SharedBuf::default();
    let rec = Arc::new(JsonlRecorder::new(Box::new(buf.clone())));
    blockwatch::telemetry::set_trace_sink(Some(Arc::clone(&rec) as Arc<dyn Recorder>));
    let result = bw.run_on(EngineKind::Sim, &ExecConfig::new(4));
    blockwatch::telemetry::set_trace_sink(None);
    assert_eq!(result.outcome, blockwatch::RunOutcome::Completed);
    rec.flush();
    let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
    TimelineReport::parse(&text).unwrap()
}

/// The phase profile flags the seeded straggler thread (and only it).
#[test]
fn phase_profile_flags_seeded_straggler() {
    if !blockwatch::telemetry::ENABLED {
        return; // no spans to profile without the feature
    }
    let profile = traced_timeline(&straggler_source(true)).phase_profile();
    assert_eq!(profile.dom, "cyc");
    assert!(!profile.phases.is_empty());
    assert_eq!(profile.deviant_threads(), vec![0], "{}", profile.render());
    let text = profile.render();
    assert!(text.contains("DEVIANT"), "{text}");
    assert!(text.contains("deviant thread(s): t0"), "{text}");
}

/// The same program without the seeded imbalance profiles clean.
#[test]
fn phase_profile_reports_symmetric_program_similar() {
    if !blockwatch::telemetry::ENABLED {
        return;
    }
    let profile = traced_timeline(&straggler_source(false)).phase_profile();
    assert!(!profile.phases.is_empty());
    assert_eq!(profile.deviant_threads(), Vec::<u32>::new(), "{}", profile.render());
    assert!(profile.render().contains("all threads similar in every phase"));
}
