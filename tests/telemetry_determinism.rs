//! The telemetry determinism contract: for a fixed (program, config,
//! seed), the **counter and gauge** part of a run's telemetry snapshot is
//! bitwise reproducible — only histograms (wall-clock timings) may differ
//! between two identical runs. This is what makes the counters usable as
//! regression oracles for the figure-8/9 overhead attribution.

use std::io::{self, Write};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use blockwatch::reports::ForensicsReport;
use blockwatch::splash::{Benchmark, Size};
use blockwatch::{
    Blockwatch, FaultModel, JsonlRecorder, MetricRegistry, Recorder, Sampler, SimConfig,
};

/// Two same-seed simulated runs produce identical deterministic snapshots.
#[test]
fn same_seed_runs_have_identical_counters() {
    let bw = Blockwatch::from_module(Benchmark::Fft.module(Size::Test).unwrap()).unwrap();
    let config = SimConfig::new(4).seed(0xdead_beef);
    let a = bw.run_with(&config);
    let b = bw.run_with(&config);

    let da = a.telemetry.deterministic_part();
    let db = b.telemetry.deterministic_part();
    assert_eq!(da.counters(), db.counters(), "counters must be reproducible");
    assert_eq!(da.gauges(), db.gauges(), "gauges must be reproducible");

    // The snapshot agrees with the run's own bookkeeping.
    assert_eq!(a.telemetry.counter("vm.instructions"), Some(a.total_steps));
    assert_eq!(a.telemetry.counter("vm.events_sent"), Some(a.events_sent));
    assert_eq!(
        a.telemetry.counter("vm.branches"),
        Some(a.branches_per_thread.iter().sum())
    );
    // Cycle attribution is internally consistent: the events bucket is
    // nonzero for an instrumented program.
    assert!(a.telemetry.counter("vm.cycles.events").is_some());
    // Per-thread step counters line up with the steps_per_thread vector.
    for (tid, &steps) in a.steps_per_thread.iter().enumerate() {
        assert_eq!(
            a.telemetry.counter(&format!("vm.thread.{tid}.steps")),
            Some(steps),
            "thread {tid} step counter"
        );
    }
}

/// A different seed is allowed to (and here does) change scheduling, but
/// each seed remains self-consistent.
#[test]
fn deterministic_part_excludes_wall_clock() {
    let bw = Blockwatch::from_module(Benchmark::Radix.module(Size::Test).unwrap()).unwrap();
    let result = bw.run(2);
    let det = result.telemetry.deterministic_part();
    assert!(det.histograms().is_empty(), "histograms are wall-clock, not deterministic");
    // The full pipeline snapshot keeps its stage-timing histograms.
    let pipeline = bw.telemetry();
    assert_eq!(pipeline.histograms().len(), 5, "one histogram per pipeline stage");
    assert!(pipeline.deterministic_part().histograms().is_empty());
}

/// Campaigns at one worker preserve the contract end to end: records and
/// outcome counters are reproducible; only wall-time histograms differ.
#[test]
fn same_seed_campaigns_have_identical_outcome_counters() {
    let bw = Blockwatch::from_module(Benchmark::Fft.module(Size::Test).unwrap()).unwrap();
    let run = || {
        bw.campaign_runner(20, FaultModel::BranchFlip, 2)
            .seed(11)
            .workers(1)
            .run()
            .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.records, b.records);
    let (da, db) = (a.telemetry.deterministic_part(), b.telemetry.deterministic_part());
    assert_eq!(da.counters(), db.counters());
    assert_eq!(
        a.telemetry.counter("campaign.outcome.detected"),
        Some(a.counts.detected as u64)
    );
}

/// A writer appending into a shared buffer, so the test can read the
/// JSONL trace back without touching the filesystem.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Live sampling is observability-only: a same-seed campaign traced with
/// a background [`Sampler`] attached produces the identical records,
/// identical deterministic telemetry, and a byte-identical `bw report` —
/// the `sample` records ride alongside without perturbing anything.
#[test]
fn sampling_does_not_perturb_campaign_determinism() {
    let bw = Blockwatch::from_module(Benchmark::Fft.module(Size::Test).unwrap()).unwrap();
    let run = |with_sampler: bool| {
        let buf = SharedBuf::default();
        let rec = Arc::new(JsonlRecorder::new(Box::new(buf.clone())));
        let sampler = with_sampler.then(|| {
            Sampler::start(
                MetricRegistry::global(),
                Arc::clone(&rec) as Arc<dyn Recorder>,
                Duration::from_millis(2),
            )
        });
        let result = bw
            .campaign_runner(20, FaultModel::BranchFlip, 2)
            .seed(11)
            .workers(1)
            .recorder(rec.as_ref())
            .run()
            .unwrap();
        if let Some(sampler) = sampler {
            sampler.stop();
        }
        rec.flush();
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        (result, text)
    };
    let (sampled, sampled_trace) = run(true);
    let (plain, plain_trace) = run(false);

    assert_eq!(sampled.records, plain.records);
    let (ds, dp) = (
        sampled.telemetry.deterministic_part(),
        plain.telemetry.deterministic_part(),
    );
    assert_eq!(ds.counters(), dp.counters());
    assert_eq!(ds.gauges(), dp.gauges());

    // The sampled trace actually contains sample records (with the
    // feature on — the sampler is inert without it)...
    if blockwatch::telemetry::ENABLED {
        assert!(sampled_trace.contains("\"ev\":\"sample\""), "{sampled_trace}");
    }
    assert!(!plain_trace.contains("\"ev\":\"sample\""));
    // ...and the forensics view ignores them: byte-identical reports.
    let report_sampled = ForensicsReport::parse(&sampled_trace).unwrap().render();
    let report_plain = ForensicsReport::parse(&plain_trace).unwrap().render();
    assert_eq!(report_sampled, report_plain);
}
