//! Cross-crate integration tests: every SPLASH-2 port through the full
//! pipeline (front-end → analysis → instrumentation → both engines), at
//! several thread counts, with determinism and zero-false-positive checks.

use std::sync::Arc;

use blockwatch::vm::{run_real, run_sim, ProgramImage, RealConfig, RunOutcome, SimConfig};
use blockwatch::{Benchmark, Blockwatch, Size};

#[test]
fn all_ports_complete_cleanly_at_many_thread_counts() {
    for bench in Benchmark::ALL {
        let bw = Blockwatch::from_module(bench.module(Size::Test).expect("compiles"))
            .expect("verifies");
        for nthreads in [1u32, 2, 4, 8, 16, 32] {
            let result = bw.run(nthreads);
            assert_eq!(
                result.outcome,
                RunOutcome::Completed,
                "{} at {} threads",
                bench.name(),
                nthreads
            );
            assert!(
                !result.detected(),
                "false positive in {} at {} threads: {:?}",
                bench.name(),
                nthreads,
                result.violations
            );
            assert!(result.events_sent > 0, "{} sent no events", bench.name());
        }
    }
}

#[test]
fn sim_runs_are_deterministic() {
    for bench in Benchmark::ALL {
        let image = ProgramImage::prepare_default(bench.module(Size::Test).expect("compiles"));
        let a = run_sim(&image, &SimConfig::new(4));
        let b = run_sim(&image, &SimConfig::new(4));
        assert_eq!(a.outputs, b.outputs, "{}", bench.name());
        assert_eq!(a.parallel_cycles, b.parallel_cycles, "{}", bench.name());
        assert_eq!(a.total_steps, b.total_steps, "{}", bench.name());
    }
}

#[test]
fn real_engine_matches_sim_outputs_on_deterministic_ports() {
    // Ports whose outputs are schedule-independent (no lock-order-dependent
    // float accumulation feeding the output).
    for bench in [Benchmark::Fft, Benchmark::Radix, Benchmark::Raytrace] {
        let image =
            Arc::new(ProgramImage::prepare_default(bench.module(Size::Test).expect("compiles")));
        let sim = run_sim(&image, &SimConfig::new(4));
        let real = run_real(&image, &RealConfig::new(4));
        assert_eq!(real.outcome, RunOutcome::Completed, "{}", bench.name());
        assert_eq!(sim.outputs, real.outputs, "{}", bench.name());
        assert!(!real.detected(), "{}: {:?}", bench.name(), real.violations);
        assert_eq!(real.events_dropped, 0, "{}", bench.name());
    }
}

#[test]
fn all_ports_are_clean_on_the_real_engine() {
    for bench in Benchmark::ALL {
        let image =
            Arc::new(ProgramImage::prepare_default(bench.module(Size::Test).expect("compiles")));
        let real = run_real(&image, &RealConfig::new(4));
        assert_eq!(real.outcome, RunOutcome::Completed, "{}", bench.name());
        assert!(
            !real.detected(),
            "false positive in {} on real threads: {:?}",
            bench.name(),
            real.violations
        );
    }
}

#[test]
fn instrumentation_does_not_change_program_semantics() {
    for bench in Benchmark::ALL {
        let image = ProgramImage::prepare_default(bench.module(Size::Test).expect("compiles"));
        let mut with = SimConfig::new(4);
        with.monitor = blockwatch::MonitorMode::Enabled;
        let mut without = SimConfig::new(4);
        without.monitor = blockwatch::MonitorMode::Off;
        let a = run_sim(&image, &with);
        let b = run_sim(&image, &without);
        assert_eq!(a.outputs, b.outputs, "{}", bench.name());
        assert_eq!(a.branches_per_thread, b.branches_per_thread, "{}", bench.name());
    }
}
