//! Parallel-vs-sequential analysis parity.
//!
//! The SCC-parallel analysis (`ModuleAnalysis::run_parallel`) must be
//! bitwise-identical to the sequential oracle (`ModuleAnalysis::run`) in
//! everything downstream consumers read — value categories, the branch
//! table (categories, parallel-section flags, lock counts), and the
//! parallel-function set — on every SPLASH port and across a seeded sweep
//! of generated modules, at every worker count. `iterations`, `trace` and
//! `sccs` are schedule artifacts and excluded by `divergence` itself.

use blockwatch::gen::{generate_module, GenConfig};
use blockwatch::splash::{Benchmark, Size};
use bw_analysis::ModuleAnalysis;

const WORKER_SWEEP: [usize; 4] = [1, 2, 4, 8];

fn assert_parity(module: &bw_ir::Module, what: &str) {
    let oracle = ModuleAnalysis::run(module);
    for workers in WORKER_SWEEP {
        let parallel = ModuleAnalysis::run_parallel(module, workers);
        if let Some(diff) = oracle.divergence(&parallel) {
            panic!("{what} diverges at {workers} workers: {diff}");
        }
        assert!(
            parallel.sccs > 0,
            "{what}: parallel path must report its SCC count"
        );
    }
}

#[test]
fn splash_ports_are_worker_invariant() {
    for bench in Benchmark::ALL {
        let module = bench.module(Size::Test).expect("splash port compiles");
        assert_parity(&module, bench.name());
    }
}

#[test]
fn splash_ports_at_larger_size() {
    // One heavier module exercises multi-SCC scheduling harder.
    let module = Benchmark::Fft.module(Size::Small).expect("fft compiles");
    assert_parity(&module, "fft/small");
}

#[test]
fn generated_modules_are_worker_invariant() {
    // ≥100 fuzz seeds across the worker sweep (the acceptance bar).
    let cfg = GenConfig::default();
    for seed in 0..120u64 {
        let module = generate_module(seed, &cfg);
        assert_parity(&module, &format!("gen seed {seed}"));
    }
}

#[test]
fn generated_modules_with_deeper_shapes() {
    // Larger programs with more call structure: more cross-function SCC
    // edges, more parameter merges.
    let cfg = GenConfig { max_stmts: 120, max_depth: 4, ..GenConfig::default() };
    for seed in 0..20u64 {
        let module = generate_module(seed, &cfg);
        assert_parity(&module, &format!("gen deep seed {seed}"));
    }
}
