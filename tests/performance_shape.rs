//! Shape tests for the Figure 6/7 performance results on the simulated
//! 32-core machine: the geomean overhead rises from 1 to 2 threads (the
//! NUMA placement effect), then falls monotonically, ending well below the
//! 4-thread value at 32 threads — and duplication does not amortize.

use blockwatch::reports::{duplication_comparison, geomean_at, overhead_series};
use blockwatch::{Benchmark, Size};

#[test]
fn figure7_shape_bump_then_amortize() {
    let threads = [1u32, 2, 4, 32];
    let series = overhead_series(Size::Test, &threads);
    let g1 = geomean_at(&series, 1);
    let g2 = geomean_at(&series, 2);
    let g4 = geomean_at(&series, 4);
    let g32 = geomean_at(&series, 32);

    assert!(g2 > g1, "1→2 thread bump missing: {g1} vs {g2}");
    assert!(g4 > g32, "no amortization: 4t {g4} vs 32t {g32}");
    // Paper magnitudes: ~2.15x at 4 threads, ~1.16x at 32.
    assert!(g4 > 1.5 && g4 < 3.5, "4-thread geomean {g4} out of range");
    assert!(g32 > 1.0 && g32 < 1.45, "32-thread geomean {g32} out of range");
}

#[test]
fn every_benchmark_amortizes_from_4_to_32_threads() {
    let threads = [4u32, 32];
    for s in overhead_series(Size::Test, &threads) {
        let r4 = s.points[0].ratio();
        let r32 = s.points[1].ratio();
        assert!(
            r32 < r4,
            "{}: 32-thread overhead {r32} not below 4-thread {r4}",
            s.name
        );
        assert!(r32 >= 1.0, "{}: overhead below baseline?", s.name);
    }
}

#[test]
fn duplication_does_not_amortize() {
    // Section VI: duplication re-executes everything and pays a
    // determinism-enforcement cost that grows with the thread count, so it
    // stays at >= 2x (and rises) while BLOCKWATCH keeps falling.
    let points = duplication_comparison(Benchmark::Fft, Size::Test, &[8, 32]);
    let (bw8, dup8) = (points[0].blockwatch, points[0].duplication);
    let (bw32, dup32) = (points[1].blockwatch, points[1].duplication);
    assert!(dup32 >= 2.0, "duplication should cost at least 2x, got {dup32}");
    assert!(dup32 >= dup8 * 0.95, "duplication must not amortize: {dup8} -> {dup32}");
    assert!(bw32 < bw8, "BLOCKWATCH must amortize: {bw8} -> {bw32}");
    assert!(
        dup32 > bw32 * 1.5,
        "at 32 threads duplication ({dup32}) should far exceed BLOCKWATCH ({bw32})"
    );
}
