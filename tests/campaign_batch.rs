//! Cross-image campaign batching: a `CampaignBatch` over many prepared
//! images must produce, for every image, exactly the deterministic payload
//! a standalone `run_campaign` on that image produces — at any worker
//! count, with the whole batch sharing one worker pool.

use std::sync::Arc;

use blockwatch::fault::{run_campaign, CampaignBatch, CampaignConfig, FaultModel};
use blockwatch::gen::{generate_module, GenConfig};
use blockwatch::vm::{ProgramImage, SimConfig};

const NTHREADS: u32 = 4;
const INJECTIONS: usize = 6;
const IMAGES: u64 = 8;

/// One fuzz-generator image per seed, prepared with default analysis —
/// eight structurally different programs, exactly how the fuzz driver's
/// injection stage feeds the batch.
fn images() -> Vec<(u64, Arc<ProgramImage>)> {
    (0..IMAGES)
        .map(|seed| {
            let module = generate_module(seed, &GenConfig::default());
            (seed, Arc::new(ProgramImage::prepare_default(module)))
        })
        .collect()
}

fn config_for(seed: u64) -> CampaignConfig {
    let sim = SimConfig::new(NTHREADS).seed(seed).max_steps(2_000_000);
    CampaignConfig::new(INJECTIONS, FaultModel::BranchFlip, NTHREADS).seed(seed).sim(sim)
}

#[test]
fn batch_is_bitwise_identical_to_sequential_campaigns_at_any_worker_count() {
    let images = images();

    // Ground truth: one sequential, single-worker campaign per image.
    let sequential: Vec<_> = images
        .iter()
        .map(|(seed, image)| {
            run_campaign(image, &config_for(*seed).workers(1)).expect("campaign runs")
        })
        .collect();

    for pool in [1usize, 4] {
        let mut batch = CampaignBatch::new().workers(pool);
        for (seed, image) in &images {
            batch.push(Arc::clone(image), config_for(*seed));
        }
        let outcome = batch.run();
        assert_eq!(outcome.results.len(), images.len());
        assert!(
            !outcome.worker_stats.is_empty(),
            "shared pool must report worker statistics"
        );

        for (i, (result, alone)) in outcome.results.iter().zip(&sequential).enumerate() {
            let batched = result.as_ref().expect("batched campaign runs");
            let seed = images[i].0;
            assert_eq!(batched.records, alone.records, "records diverge for seed {seed}");
            assert_eq!(batched.counts, alone.counts, "counts diverge for seed {seed}");
            assert_eq!(batched.aborted, alone.aborted, "abort diverges for seed {seed}");
            assert_eq!(
                batched.branches_per_thread, alone.branches_per_thread,
                "golden branch counts diverge for seed {seed}"
            );
            assert_eq!(
                batched.golden_outputs_len, alone.golden_outputs_len,
                "golden outputs diverge for seed {seed}"
            );
        }
    }
}

#[test]
fn two_batch_runs_are_bitwise_identical() {
    let images = images();
    let run = |pool: usize| {
        let mut batch = CampaignBatch::new().workers(pool);
        for (seed, image) in &images {
            batch.push(Arc::clone(image), config_for(*seed));
        }
        batch.run()
    };
    let a = run(3);
    let b = run(5);
    for (seed, (ra, rb)) in images.iter().map(|(s, _)| s).zip(a.results.iter().zip(&b.results))
    {
        let (ra, rb) = (ra.as_ref().unwrap(), rb.as_ref().unwrap());
        assert_eq!(ra.records, rb.records, "seed {seed}");
        assert_eq!(ra.counts, rb.counts, "seed {seed}");
    }
}
