#!/usr/bin/env bash
# The repo's CI gate: release build, full test suite, and a zero-warning
# clippy pass over every target. Run from the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings

# The telemetry feature must be fully optional: the workspace builds,
# tests and lints clean with every instrument compiled to a no-op.
cargo build --workspace --no-default-features
cargo test -q --workspace --no-default-features
cargo clippy --workspace --all-targets --no-default-features -- -D warnings

# Fuzz smoke: a bounded random-program sweep through the whole pipeline
# (generate → round-trip → prepare → oracle), in both telemetry configs.
# 200 seeds keep this under two minutes; the nightly job goes deeper.
cargo run --release --quiet --bin bw -- fuzz --seeds 200 --inject 2
cargo run --release --quiet --bin bw --no-default-features -- fuzz --seeds 200

# Forensics smoke: a seeded campaign must leave a trace that `bw report`
# can reconstruct into per-injection evidence, and that evidence must be
# byte-identical at any worker count (the campaign seed is fixed, and the
# report ignores arrival order, worker ids and timestamps). No abort flag
# here: early-abort with multiple workers can overshoot differently.
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
cargo run --release --quiet --bin bw -- campaign splash:fft \
  --injections 40 --workers 1 --telemetry "$tmpdir/w1.jsonl" >/dev/null
cargo run --release --quiet --bin bw -- campaign splash:fft \
  --injections 40 --workers 4 --telemetry "$tmpdir/w4.jsonl" >/dev/null
cargo run --release --quiet --bin bw -- report "$tmpdir/w1.jsonl" \
  > "$tmpdir/w1.txt"
cargo run --release --quiet --bin bw -- report "$tmpdir/w4.jsonl" \
  > "$tmpdir/w4.txt"
diff "$tmpdir/w1.txt" "$tmpdir/w4.txt"
grep -q "DEVIANT" "$tmpdir/w1.txt"
grep -q "top violating sites" "$tmpdir/w1.txt"

# Sharded-ingest leg: sharding the monitor is a throughput knob, never a
# semantic one. The same seeded campaign with 1 and 4 monitor shards (and
# any worker count) must reconstruct byte-identical forensics, and the
# sharded trace must carry per-shard health counters for `bw stats`.
cargo run --release --quiet --bin bw -- campaign splash:fft \
  --injections 40 --workers 4 --monitor-shards 1 \
  --telemetry "$tmpdir/s1.jsonl" >/dev/null
cargo run --release --quiet --bin bw -- campaign splash:fft \
  --injections 40 --workers 4 --monitor-shards 4 \
  --telemetry "$tmpdir/s4.jsonl" >/dev/null
cargo run --release --quiet --bin bw -- report "$tmpdir/s1.jsonl" \
  > "$tmpdir/s1.txt"
cargo run --release --quiet --bin bw -- report "$tmpdir/s4.jsonl" \
  > "$tmpdir/s4.txt"
diff "$tmpdir/s1.txt" "$tmpdir/s4.txt"
# Sharded or not, the forensics must match the unsharded campaign above.
diff "$tmpdir/w1.txt" "$tmpdir/s4.txt"
cargo run --release --quiet --bin bw -- stats "$tmpdir/s4.jsonl" \
  | grep -q "monitor shards:"

# Real-engine leg: the OS-thread scheduler must satisfy the same Engine
# contract as the simulator on every SPLASH port (parity suite), and
# survive a fuzz smoke with real-engine campaigns and the sim-vs-real
# oracle cross-check. The window is small: these runs cost wall-clock
# time on real threads, not simulated cycles.
cargo test -q -p blockwatch --test engine_parity
cargo run --release --quiet --bin bw -- fuzz --seeds 25 --inject 2 \
  --engine real --real-cross-check

echo "ci: all gates passed"
