#!/usr/bin/env bash
# The repo's CI gate: release build, full test suite, and a zero-warning
# clippy pass over every target. Run from the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings

echo "ci: all gates passed"
