#!/usr/bin/env bash
# The repo's CI gate: release build, full test suite, and a zero-warning
# clippy pass over every target. Run from the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings

# The telemetry feature must be fully optional: the workspace builds,
# tests and lints clean with every instrument compiled to a no-op.
cargo build --workspace --no-default-features
cargo test -q --workspace --no-default-features
cargo clippy --workspace --all-targets --no-default-features -- -D warnings

echo "ci: all gates passed"
