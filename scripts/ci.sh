#!/usr/bin/env bash
# The repo's CI gate: release build, full test suite, and a zero-warning
# clippy pass over every target. Run from the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings

# The telemetry feature must be fully optional: the workspace builds,
# tests and lints clean with every instrument compiled to a no-op.
cargo build --workspace --no-default-features
cargo test -q --workspace --no-default-features
cargo clippy --workspace --all-targets --no-default-features -- -D warnings

# Fuzz smoke: a bounded random-program sweep through the whole pipeline
# (generate → round-trip → prepare → oracle), in both telemetry configs.
# 200 seeds keep this under two minutes; the nightly job goes deeper.
cargo run --release --quiet --bin bw -- fuzz --seeds 200 --inject 2
cargo run --release --quiet --bin bw --no-default-features -- fuzz --seeds 200

# Forensics smoke: a seeded campaign must leave a trace that `bw report`
# can reconstruct into per-injection evidence, and that evidence must be
# byte-identical at any worker count (the campaign seed is fixed, and the
# report ignores arrival order, worker ids and timestamps). No abort flag
# here: early-abort with multiple workers can overshoot differently.
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
cargo run --release --quiet --bin bw -- campaign splash:fft \
  --injections 40 --workers 1 --telemetry "$tmpdir/w1.jsonl" >/dev/null
cargo run --release --quiet --bin bw -- campaign splash:fft \
  --injections 40 --workers 4 --telemetry "$tmpdir/w4.jsonl" >/dev/null
cargo run --release --quiet --bin bw -- report "$tmpdir/w1.jsonl" \
  > "$tmpdir/w1.txt"
cargo run --release --quiet --bin bw -- report "$tmpdir/w4.jsonl" \
  > "$tmpdir/w4.txt"
diff "$tmpdir/w1.txt" "$tmpdir/w4.txt"
grep -q "DEVIANT" "$tmpdir/w1.txt"
grep -q "top violating sites" "$tmpdir/w1.txt"

# Sharded-ingest leg: sharding the monitor is a throughput knob, never a
# semantic one. The same seeded campaign with 1 and 4 monitor shards (and
# any worker count) must reconstruct byte-identical forensics, and the
# sharded trace must carry per-shard health counters for `bw stats`.
cargo run --release --quiet --bin bw -- campaign splash:fft \
  --injections 40 --workers 4 --monitor-shards 1 \
  --telemetry "$tmpdir/s1.jsonl" >/dev/null
cargo run --release --quiet --bin bw -- campaign splash:fft \
  --injections 40 --workers 4 --monitor-shards 4 \
  --telemetry "$tmpdir/s4.jsonl" >/dev/null
cargo run --release --quiet --bin bw -- report "$tmpdir/s1.jsonl" \
  > "$tmpdir/s1.txt"
cargo run --release --quiet --bin bw -- report "$tmpdir/s4.jsonl" \
  > "$tmpdir/s4.txt"
diff "$tmpdir/s1.txt" "$tmpdir/s4.txt"
# Sharded or not, the forensics must match the unsharded campaign above.
diff "$tmpdir/w1.txt" "$tmpdir/s4.txt"
cargo run --release --quiet --bin bw -- stats "$tmpdir/s4.jsonl" \
  | grep -q "monitor shards:"

# Observability leg. Live sampling is observability-only: the same seeded
# campaign traced with --sample-interval-ms must yield a `bw report`
# byte-identical to the unsampled w1 trace above, while the sampled trace
# itself carries `sample` records that `bw top` / `bw stats --series`
# render into a time series.
cargo run --release --quiet --bin bw -- campaign splash:fft \
  --injections 40 --workers 1 --telemetry "$tmpdir/sampled.jsonl" \
  --sample-interval-ms 5 >/dev/null
grep -q '"ev":"sample"' "$tmpdir/sampled.jsonl"
cargo run --release --quiet --bin bw -- report "$tmpdir/sampled.jsonl" \
  > "$tmpdir/sampled.txt"
diff "$tmpdir/w1.txt" "$tmpdir/sampled.txt"
cargo run --release --quiet --bin bw -- top "$tmpdir/sampled.jsonl" \
  | grep -q "totals:"
cargo run --release --quiet --bin bw -- stats "$tmpdir/sampled.jsonl" --series \
  | grep -q "samples:"
cargo run --release --quiet --bin bw -- stats "$tmpdir/sampled.jsonl" \
  --format json | grep -q '"events.sample":'

# Timeline leg: span tracing is observability-only. A traced run must
# leave tspan records that `bw timeline` renders into per-thread lanes
# and a cross-thread phase profile, the Chrome export must be well-formed
# Trace Event JSON (ph/ts/tid keys, Perfetto-loadable), and a seeded
# campaign traced with --trace-spans must reconstruct a `bw report`
# byte-identical to the untraced w1 forensics above.
cargo run --release --quiet --bin bw -- run splash:fft --threads 4 \
  --telemetry "$tmpdir/spans.jsonl" --trace-spans >/dev/null
grep -q '"ev":"tspan"' "$tmpdir/spans.jsonl"
cargo run --release --quiet --bin bw -- timeline "$tmpdir/spans.jsonl" \
  --chrome "$tmpdir/spans.chrome.json" --phase-profile > "$tmpdir/timeline.txt"
grep -q 'timeline \[cyc\]' "$tmpdir/timeline.txt"
grep -q 'phase profile \[cyc\]' "$tmpdir/timeline.txt"
if command -v python3 >/dev/null 2>&1; then
  python3 - "$tmpdir/spans.chrome.json" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
events = doc["traceEvents"]
assert events, "empty traceEvents"
assert any(e.get("ph") == "X" and "ts" in e and "tid" in e for e in events), \
    "no complete duration event with ph/ts/tid"
PY
else
  grep -q '"ph":"X"' "$tmpdir/spans.chrome.json"
  grep -q '"ts":' "$tmpdir/spans.chrome.json"
  grep -q '"tid":' "$tmpdir/spans.chrome.json"
fi
cargo run --release --quiet --bin bw -- campaign splash:fft \
  --injections 40 --workers 1 --telemetry "$tmpdir/traced.jsonl" \
  --trace-spans >/dev/null
cargo run --release --quiet --bin bw -- report "$tmpdir/traced.jsonl" \
  > "$tmpdir/traced.txt"
diff "$tmpdir/w1.txt" "$tmpdir/traced.txt"

# Metrics-endpoint smoke: a campaign serving --metrics-addr must answer
# GET /metrics with bw_-prefixed Prometheus text while it runs.
cargo run --release --quiet --bin bw -- campaign splash:fft \
  --injections 3000 --workers 2 --metrics-addr 127.0.0.1:9187 \
  >/dev/null 2>&1 &
metrics_pid=$!
got_metrics=""
for _ in $(seq 1 50); do
  if body="$(curl -sf http://127.0.0.1:9187/metrics 2>/dev/null)" \
     || body="$( (exec 3<>/dev/tcp/127.0.0.1/9187 \
          && printf 'GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n' >&3 \
          && cat <&3) 2>/dev/null)"; then
    if grep -q "bw_live_" <<<"$body"; then got_metrics=yes; break; fi
  fi
  sleep 0.1
done
wait "$metrics_pid"
[ -n "$got_metrics" ] || { echo "metrics endpoint never served bw_ metrics" >&2; exit 1; }

# Analysis-parity leg: the SCC-parallel similarity analysis is a
# throughput knob, never a semantic one. `bw analyze` output (per-branch
# categories, check plan, histogram) must be byte-identical between the
# sequential oracle and the parallel path at 1 and 4 workers, on every
# SPLASH port and on a seeded generated module.
cargo run --release --quiet --bin bw -- gen --seed 0xb10c --max-stmts 120 \
  --out "$tmpdir/gen.bwir"
for target in splash:fft splash:fmm splash:radix splash:raytrace splash:water \
    splash:ocean-contig splash:ocean-noncontig "$tmpdir/gen.bwir"; do
  name="$(basename "$target" | tr ':' '_')"
  cargo run --release --quiet --bin bw -- analyze "$target" \
    > "$tmpdir/seq_$name.txt"
  for workers in 1 4; do
    cargo run --release --quiet --bin bw -- analyze "$target" \
      --analysis-workers "$workers" > "$tmpdir/par_$name.txt"
    diff "$tmpdir/seq_$name.txt" "$tmpdir/par_$name.txt"
  done
done
# The deeper sweep (worker counts 1/2/4/8, 100+ fuzz seeds) runs in the
# test suite: crates/core's `analysis_parity` integration tests.
cargo test -q -p blockwatch --test analysis_parity

# Perf-trajectory gate: the seeded bench suite must emit schema'd JSON and
# stay within 20x of the committed baseline (catches order-of-magnitude
# cliffs, tolerates noisy CI machines).
cargo run --release --quiet --bin bw -- bench-suite \
  --json "$tmpdir/BENCH.json" --baseline results/BENCH_baseline.json
grep -q '"schema":"bw-bench-suite/v1"' "$tmpdir/BENCH.json"

# Real-engine leg: the OS-thread scheduler must satisfy the same Engine
# contract as the simulator on every SPLASH port (parity suite), and
# survive a fuzz smoke with real-engine campaigns and the sim-vs-real
# oracle cross-check. The window is small: these runs cost wall-clock
# time on real threads, not simulated cycles.
cargo test -q -p blockwatch --test engine_parity
cargo run --release --quiet --bin bw -- fuzz --seeds 25 --inject 2 \
  --engine real --real-cross-check

echo "ci: all gates passed"
